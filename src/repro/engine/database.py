"""The public engine facade: a small in-memory analytical database.

Typical use::

    db = Database()
    db.create_table(schema)           # TableSchema from repro.schema
    db.table("store_sales").append_rows(rows)
    db.gather_stats()
    result = db.execute("SELECT ... FROM store_sales, date_dim WHERE ...")
    for row in result.rows():
        ...

``execute`` accepts SELECT (with CTEs, set ops, windows), INSERT,
DELETE and UPDATE — plus an ``EXPLAIN [ANALYZE]`` prefix on any query,
returned as a one-column plan result. ``explain`` returns the
optimized plan as text and ``explain_analyze`` executes the query and
annotates every plan node with measured rows / elapsed / operator
counters (see :mod:`repro.obs`). Materialized views
(``create_materialized_view``) are matched transparently by query
rewrite when ``enable_matview_rewrite`` is on.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

import numpy as np

from ..obs import (
    ExecStatsCollector,
    annotate_plan,
    format_bytes,
    get_registry,
    plan_to_dict,
    q_error,
)
from .batch import Batch
from .catalog import Catalog
from .errors import (
    EngineError,
    ExecutionError,
    PlanningError,
    QueryCancelled,
    QueryTimeout,
)
from .executor import Executor
from .expr import EvalContext, evaluate
from .governor import ResourceContext
from .parallel import get_pool
from .matview import MaterializedView, define_view, try_rewrite
from .optimizer import Optimizer, OptimizerSettings
from .planner import Planner
from .sql import ast_nodes as A
from .sql.parser import parse_statement
from .systables import install_sys_tables, statement_touches_sys
from .types import Kind, TableSchema
from .vector import Vector


@dataclass
class Result:
    """A query result: ordered column names plus row tuples."""

    column_names: list[str]
    _batch: Batch
    elapsed: float = 0.0
    rewritten_from_view: Optional[str] = None
    rowcount: int = 0  # affected rows for DML
    spill_partitions: int = 0  # operator spill fan-out under a memory budget
    spilled_bytes: int = 0  # bytes written to spill files

    def rows(self) -> list[tuple]:
        return self._batch.rows()

    def column(self, name: str) -> list[Any]:
        return self._batch.column(name).to_list()

    def scalar(self) -> Any:
        rows = self.rows()
        if len(rows) != 1 or len(rows[0]) != 1:
            raise ExecutionError("scalar() requires a 1x1 result")
        return rows[0][0]

    def __len__(self) -> int:
        return self._batch.num_rows

    def to_text(self, max_rows: int = 20) -> str:
        header = " | ".join(self.column_names)
        lines = [header, "-" * len(header)]
        for row in self.rows()[:max_rows]:
            lines.append(" | ".join(str(v) for v in row))
        if len(self) > max_rows:
            lines.append(f"... ({len(self)} rows)")
        return "\n".join(lines)


@dataclass
class QueryTrace:
    """Lightweight execution trace for EXPLAIN ANALYZE-style reporting.

    ``plan_text`` holds the optimized plan (prefixed with the rewrite
    header when a materialized view answered the query)."""

    sql: str
    plan_text: str
    elapsed: float
    used_view: Optional[str]
    rows: int = 0


#: recognizes an EXPLAIN [ANALYZE] prefix handed to ``execute``
_EXPLAIN_RE = re.compile(r"^\s*EXPLAIN(\s+ANALYZE)?\s+", re.IGNORECASE)


def _failure_status(exc: BaseException) -> str:
    """The statement-store status for a failed execution — the same
    taxonomy the runner's QueryTiming uses."""
    if isinstance(exc, QueryTimeout):
        return "timeout"
    if isinstance(exc, QueryCancelled):
        return "cancelled"
    return "failed"


def _worst_q_error(plan, collector: ExecStatsCollector):
    """The worst per-operator cardinality Q-error of one executed
    plan, or ``None`` when no operator had both an estimate and a
    measurement."""
    worst = None
    for node in plan.walk():
        stats = collector.stats_for(node)
        est = node.estimated_rows
        if stats is None or est is None:
            continue
        value = q_error(est, stats.rows_out)
        if worst is None or value > worst:
            worst = value
    return worst


class Database:
    """The engine facade: DDL, SQL execution, materialized views, statistics."""
    def __init__(
        self,
        optimizer_settings: OptimizerSettings | None = None,
        enable_matview_rewrite: bool = True,
        workers: Optional[int] = None,
        statement_store=None,
    ):
        self.catalog = Catalog()
        self.optimizer_settings = optimizer_settings or OptimizerSettings()
        self.enable_matview_rewrite = enable_matview_rewrite
        #: default morsel-parallelism for every statement (``None`` or
        #: 1 = serial); per-call ``workers=`` overrides it.  Results are
        #: byte-identical at any worker count — see
        #: :mod:`repro.engine.parallel`
        self.workers = workers
        self.traces: list[QueryTrace] = []
        self.trace_queries = False
        #: optional :class:`~repro.obs.PlanQualityAggregator`; when set,
        #: every query executes under a stats collector and folds its
        #: per-operator Q-error records into the aggregator (the
        #: benchmark runner installs one for plan-quality reporting)
        self.plan_quality = None
        #: optional :class:`~repro.faults.FaultInjector`; when set, every
        #: query execution rolls its query- and operator-level injection
        #: points (the runner installs one for the duration of fault-
        #: injected query runs)
        self.fault_injector = None
        #: optional :class:`~repro.obs.StatementStore`; when set, every
        #: statement handed to :meth:`execute` is fingerprinted and its
        #: outcome folded into per-fingerprint aggregates (queryable as
        #: ``sys.statements`` / ``sys.queries``).  Statements that scan
        #: ``sys.*`` tables are never recorded — introspection must not
        #: pollute the data it reads.  The disabled path costs one
        #: ``is None`` check.
        self.statement_store = statement_store
        #: ``(plan, collector)`` of the most recent statement executed
        #: under a stats collector — the backing state of
        #: ``sys.operators``
        self.last_profiled = None
        #: absolute path of the column store this database was opened
        #: from / last saved to (incremental saves key off it), plus a
        #: small info dict (scale factor, seed, per-table row counts)
        self._store_path: Optional[str] = None
        self.store_info: Optional[dict] = None
        install_sys_tables(self)

    # -- persistence ---------------------------------------------------------

    def save(
        self,
        path: str,
        block_rows: Optional[int] = None,
        scale_factor: Optional[float] = None,
        seed: Optional[int] = None,
    ) -> dict:
        """Persist every base table to the column store at ``path``
        (see :mod:`repro.engine.colstore`).  Saving back to the store
        this database came from rewrites only columns DML touched.
        Returns the written manifest."""
        from .colstore import save_database

        return save_database(
            self, path, block_rows=block_rows,
            scale_factor=scale_factor, seed=seed,
        )

    @classmethod
    def open(cls, path: str, **kwargs) -> "Database":
        """Open a persistent column store as a new database.

        Columns stay on disk until first scanned (lazy mmap-backed
        hydration) and optimizer statistics come from the manifest, so
        opening costs O(columns touched) — not a full load.  Keyword
        arguments are forwarded to the constructor."""
        from .colstore import open_database

        db = cls(**kwargs)
        open_database(db, path)
        return db

    # -- DDL -----------------------------------------------------------------

    def create_table(self, schema: TableSchema):
        return self.catalog.create_table(schema)

    def drop_table(self, name: str) -> None:
        self.catalog.drop_table(name)

    def table(self, name: str):
        return self.catalog.table(name)

    def create_index(self, table: str, column: str, index_type: str = "hash"):
        return self.catalog.create_index(table, column, index_type)

    def gather_stats(self, table: Optional[str] = None) -> None:
        self.catalog.gather_stats(table)

    def create_materialized_view(self, name: str, sql: str) -> MaterializedView:
        view = define_view(name, sql, self.catalog, self._execute_sql_to_batch)
        self.catalog.register_matview(view)
        return view

    def refresh_matviews(self) -> int:
        """Recompute every materialized view (data-maintenance step)."""
        for view in self.catalog.matviews:
            view.refresh(self._execute_sql_to_batch)
        return len(self.catalog.matviews)

    # -- queries -----------------------------------------------------------------

    def execute_ast(
        self,
        query: A.Query,
        timeout_s: Optional[float] = None,
        mem_budget_bytes: Optional[float] = None,
        cancel=None,
        workers: Optional[int] = None,
        faults=None,
    ) -> Result:
        """Execute an already-parsed query AST (the differential-testing
        harness runs shrunk ASTs without a render/re-parse round trip)."""
        start = time.perf_counter()
        injector = faults if faults is not None else self.fault_injector
        if injector is not None:
            injector.at_query(f"ast:{type(query).__name__}")
        resource = self._make_resource(
            timeout_s, mem_budget_bytes, cancel, faults=faults
        )
        result = self._execute_query(
            query, resource=resource, pool=self._get_pool(workers)
        )
        result.elapsed = time.perf_counter() - start
        return result

    def execute(
        self,
        sql: str,
        timeout_s: Optional[float] = None,
        mem_budget_bytes: Optional[float] = None,
        cancel=None,
        workers: Optional[int] = None,
        faults=None,
    ) -> Result:
        """Execute one SQL statement.

        ``timeout_s`` / ``mem_budget_bytes`` / ``cancel`` (a
        ``threading.Event``) bound the statement's resources via a
        :class:`~repro.engine.governor.ResourceContext`: past the
        deadline or with the flag set the engine raises
        :class:`~repro.engine.errors.QueryTimeout` /
        :class:`~repro.engine.errors.QueryCancelled` at the next batch
        boundary; over the memory budget operators spill to temp files
        instead of failing (totals in ``Result.spill_partitions`` /
        ``Result.spilled_bytes``).  ``workers`` (default: the
        database-wide setting) fans the hot operators out over the
        shared morsel pool; the result is byte-identical to serial.
        ``faults`` overrides the database-wide fault injector for this
        statement only (the query service scopes injection per tenant).
        """
        match = _EXPLAIN_RE.match(sql)
        if match is not None:
            start = time.perf_counter()
            body = sql[match.end():]
            text = (
                self.explain_analyze(
                    body, timeout_s=timeout_s, mem_budget_bytes=mem_budget_bytes,
                    workers=workers,
                )
                if match.group(1)
                else self.explain(body)
            )
            batch = Batch(
                {"QUERY PLAN": Vector.from_values(Kind.STR, text.splitlines())}
            )
            result = Result(["QUERY PLAN"], batch)
            result.elapsed = time.perf_counter() - start
            return result
        statement = parse_statement(sql)
        store = self.statement_store
        # recursion guard: introspection queries over sys.* tables are
        # never recorded into the store they read
        record = store is not None and not statement_touches_sys(statement)
        start = time.perf_counter()
        pool = None
        collector = None
        try:
            if isinstance(statement, A.Query):
                injector = (
                    faults if faults is not None else self.fault_injector
                )
                if injector is not None:
                    injector.at_query(sql)
                resource = self._make_resource(
                    timeout_s, mem_budget_bytes, cancel, faults=faults
                )
                pool = self._get_pool(workers)
                if record:
                    # a collector rides along so the store sees peak
                    # operator memory and plan-quality Q-error
                    collector = ExecStatsCollector()
                result = self._execute_query(
                    statement, sql, resource=resource, pool=pool,
                    collector=collector,
                    record_profile=store is None or record,
                )
            elif isinstance(statement, A.Insert):
                result = self._execute_insert(statement)
            elif isinstance(statement, A.Delete):
                result = self._execute_delete(statement)
            elif isinstance(statement, A.Update):
                result = self._execute_update(statement)
            else:  # pragma: no cover
                raise EngineError(
                    f"unsupported statement {type(statement).__name__}"
                )
        except Exception as exc:
            if record:
                store.record(
                    sql, time.perf_counter() - start,
                    status=_failure_status(exc),
                    workers=getattr(pool, "workers", None) or 1,
                    error=f"{type(exc).__name__}: {exc}",
                )
            raise
        result.elapsed = time.perf_counter() - start
        registry = get_registry()
        if registry.enabled:
            registry.histogram("engine.statement_seconds").observe(
                result.elapsed
            )
        if record:
            worst_q = None
            peak_mem = 0.0
            if collector is not None:
                peak_mem = collector.peak_memory_bytes
                profiled = self.last_profiled
                if profiled is not None and profiled[1] is collector:
                    worst_q = _worst_q_error(profiled[0], collector)
            store.record(
                sql, result.elapsed, status="ok",
                rows=(len(result) if isinstance(statement, A.Query)
                      else result.rowcount),
                spill_partitions=result.spill_partitions,
                spilled_bytes=result.spilled_bytes,
                peak_memory_bytes=peak_mem,
                workers=getattr(pool, "workers", None) or 1,
                q_error=worst_q,
            )
        return result

    def explain(self, sql: str) -> str:
        statement = parse_statement(sql)
        if not isinstance(statement, A.Query):
            raise PlanningError("EXPLAIN supports queries only")
        query, used_view = self._maybe_rewrite(statement)
        plan = self._plan(query)
        header = []
        if used_view:
            header.append(f"-- rewritten to use materialized view {used_view}")
        return "\n".join(header + [plan.explain()])

    def explain_analyze(
        self,
        sql: str,
        timeout_s: Optional[float] = None,
        mem_budget_bytes: Optional[float] = None,
        workers: Optional[int] = None,
    ) -> str:
        """Execute ``sql`` and return the optimized plan tree annotated
        with per-node measured rows, elapsed time, loop counts and
        operator-specific counters (hash build sizes, bitmap probes,
        CTE-memo hits, spill partitions/bytes under a memory budget,
        ``workers=`` / ``morsels=`` fan-out under a worker pool)."""
        plan, batch, collector, used_view, elapsed = self._analyze(
            sql, timeout_s=timeout_s, mem_budget_bytes=mem_budget_bytes,
            workers=workers,
        )
        lines = []
        if used_view:
            lines.append(f"-- rewritten to use materialized view {used_view}")
        lines.append(annotate_plan(plan, collector))
        lines.append(f"Execution: rows={batch.num_rows} "
                     f"elapsed={elapsed * 1000:.3f}ms "
                     f"peak_mem={format_bytes(collector.peak_memory_bytes)}")
        text = "\n".join(lines)
        if self.trace_queries:
            self.traces.append(
                QueryTrace(sql, text, elapsed, used_view, rows=batch.num_rows)
            )
        return text

    def explain_analyze_dict(
        self,
        sql: str,
        timeout_s: Optional[float] = None,
        mem_budget_bytes: Optional[float] = None,
        workers: Optional[int] = None,
    ) -> dict:
        """:meth:`explain_analyze` for machine consumers: the annotated
        plan tree as JSON-ready dicts plus execution totals."""
        plan, batch, collector, used_view, elapsed = self._analyze(
            sql, timeout_s=timeout_s, mem_budget_bytes=mem_budget_bytes,
            workers=workers,
        )
        return {
            "sql": sql,
            "rewritten_from_view": used_view,
            "rows": batch.num_rows,
            "elapsed": elapsed,
            "peak_memory_bytes": collector.peak_memory_bytes,
            "plan": plan_to_dict(plan, collector),
        }

    def explain_dict(self, sql: str) -> dict:
        """:meth:`explain` for machine consumers: the optimized plan
        (with optimizer row estimates) as JSON-ready dicts, without
        executing the query."""
        statement = parse_statement(sql)
        if not isinstance(statement, A.Query):
            raise PlanningError("EXPLAIN supports queries only")
        query, used_view = self._maybe_rewrite(statement)
        plan = self._plan(query)
        return {
            "sql": sql,
            "rewritten_from_view": used_view,
            "plan": plan_to_dict(plan),
        }

    def _analyze(
        self,
        sql: str,
        timeout_s: Optional[float] = None,
        mem_budget_bytes: Optional[float] = None,
        workers: Optional[int] = None,
    ):
        """Shared EXPLAIN ANALYZE machinery: parse, rewrite, execute
        under a stats collector (and a resource context when bounds
        are given)."""
        statement = parse_statement(sql)
        if not isinstance(statement, A.Query):
            raise PlanningError("EXPLAIN ANALYZE supports queries only")
        query, used_view = self._maybe_rewrite(statement)
        collector = ExecStatsCollector()
        resource = self._make_resource(timeout_s, mem_budget_bytes, None)
        start = time.perf_counter()
        try:
            plan, batch = self._execute_plan(
                query, collector, resource, pool=self._get_pool(workers)
            )
        finally:
            if resource is not None:
                resource.cleanup()
        elapsed = time.perf_counter() - start
        self.last_profiled = (plan, collector)
        return plan, batch, collector, used_view, elapsed

    def _make_resource(
        self,
        timeout_s: Optional[float],
        mem_budget_bytes: Optional[float],
        cancel,
        faults=None,
    ) -> Optional[ResourceContext]:
        """A :class:`ResourceContext` for one statement, or ``None``
        when nothing is bounded (so ungoverned queries skip every
        per-operator check).  ``faults`` (a per-statement injector)
        overrides the database-wide one."""
        injector = faults if faults is not None else self.fault_injector
        if (
            timeout_s is None
            and mem_budget_bytes is None
            and cancel is None
            and injector is None
        ):
            return None
        return ResourceContext(
            memory_budget_bytes=mem_budget_bytes,
            timeout_s=timeout_s,
            cancel=cancel,
            faults=injector,
        )

    def _get_pool(self, workers: Optional[int]):
        """The shared worker pool for one statement (``None`` =
        serial).  Per-call ``workers`` overrides the database-wide
        default."""
        return get_pool(self.workers if workers is None else workers)

    def _maybe_rewrite(self, query: A.Query):
        if self.enable_matview_rewrite and self.catalog.matviews:
            rewritten = try_rewrite(query, self.catalog, self.catalog.matviews)
            registry = get_registry()
            if registry.enabled:
                name = ("engine.matview.rewrites" if rewritten is not None
                        else "engine.matview.misses")
                registry.counter(name).add()
            if rewritten is not None:
                view_name = rewritten.body.from_[0].name  # type: ignore[union-attr]
                return rewritten, view_name
        return query, None

    def _plan(self, query: A.Query):
        plan = Planner(self.catalog).plan_query(query)
        return Optimizer(self.catalog, self.optimizer_settings).optimize(plan)

    def _execute_plan(
        self,
        query: A.Query,
        collector: ExecStatsCollector | None = None,
        resource: ResourceContext | None = None,
        pool=None,
    ):
        """Plan, optimize and execute a query AST, wiring expression
        subqueries (pre-planned in their CTE scope) into the executor.
        Returns ``(optimized plan, result batch)``; when ``collector``
        is given, every executed node records its stats into it; when
        ``resource`` is given, the statement (including subqueries)
        runs under its budget/deadline; when ``pool`` is given, the hot
        operators (in subqueries too) morsel-parallelize over it."""
        planner = Planner(self.catalog)
        plan = planner.plan_query(query)
        optimizer = Optimizer(self.catalog, self.optimizer_settings)
        plan = optimizer.optimize(plan)
        subplans = planner.subquery_plans
        optimized: dict[int, object] = {}

        def run_sub(sub_query: A.Query) -> Batch:
            key = id(sub_query)
            if key not in optimized:
                sub_plan = subplans.get(key)
                if sub_plan is None:
                    sub_plan = Planner(self.catalog).plan_query(sub_query)
                optimized[key] = optimizer.optimize(sub_plan)
            return Executor(
                run_sub, self.catalog, collector, resource, pool
            ).run(optimized[key])

        executor = Executor(run_sub, self.catalog, collector, resource, pool)
        return plan, executor.run(plan)

    def _run_query_batch(self, query: A.Query) -> Batch:
        """Plan, optimize and execute a query AST (batch only)."""
        return self._execute_plan(query)[1]

    def _execute_query(
        self,
        query: A.Query,
        sql: str = "",
        resource: ResourceContext | None = None,
        pool=None,
        collector: ExecStatsCollector | None = None,
        record_profile: bool = True,
    ) -> Result:
        query, used_view = self._maybe_rewrite(query)
        if collector is None and self.plan_quality is not None:
            collector = ExecStatsCollector()
        start = time.perf_counter()
        try:
            plan, batch = self._execute_plan(query, collector, resource, pool)
        finally:
            # spill files never outlive the statement — success, timeout,
            # cancellation or error
            if resource is not None:
                resource.cleanup()
        elapsed = time.perf_counter() - start
        if collector is not None:
            if self.plan_quality is not None:
                self.plan_quality.record(sql, plan, collector)
            if record_profile:
                # sys.operators reads the most recent profiled plan;
                # introspection statements don't displace it
                self.last_profiled = (plan, collector)
        if self.trace_queries:
            header = (
                f"-- rewritten to use materialized view {used_view}\n"
                if used_view else ""
            )
            self.traces.append(
                QueryTrace(sql, header + plan.explain(), elapsed, used_view,
                           rows=batch.num_rows)
            )
        result = Result(batch.names, batch, rewritten_from_view=used_view)
        if resource is not None:
            result.spill_partitions = resource.spill_partitions
            result.spilled_bytes = resource.spilled_bytes
        return result

    def _run_subquery(self, query: A.Query) -> Batch:
        return self._run_query_batch(query)

    def _execute_sql_to_batch(self, sql: str) -> Batch:
        statement = parse_statement(sql)
        if not isinstance(statement, A.Query):
            raise PlanningError("expected a query")
        return self._run_query_batch(statement)

    # -- DML ------------------------------------------------------------------------

    def _eval_scalar_row(self, exprs: Sequence[A.Expr]) -> list[Any]:
        batch = Batch({"_dummy": Vector.constant(Kind.INT, 0, 1)})
        ctx = EvalContext(self._run_subquery)
        return [evaluate(e, batch, ctx).value(0) for e in exprs]

    def _execute_insert(self, statement: A.Insert) -> Result:
        table = self.catalog.table(statement.table)
        schema = table.schema
        target_cols = list(statement.columns) or schema.column_names
        for c in target_cols:
            schema.column(c)  # validates
        if statement.rows:
            rows = [self._eval_scalar_row(r) for r in statement.rows]
            full_rows = []
            for row in rows:
                if len(row) != len(target_cols):
                    raise ExecutionError("INSERT arity mismatch")
                by_col = dict(zip(target_cols, row))
                full_rows.append([by_col.get(c) for c in schema.column_names])
            table.append_rows(full_rows)
            count = len(full_rows)
        else:
            batch = self._execute_query(statement.query)._batch
            if len(batch.columns) != len(target_cols):
                raise ExecutionError("INSERT ... SELECT arity mismatch")
            vectors = dict(zip(target_cols, batch.columns.values()))
            full = {}
            n = batch.num_rows
            for c in schema.column_names:
                if c in vectors:
                    full[c] = self._coerce(vectors[c], schema.column(c).kind)
                else:
                    full[c] = Vector.nulls(schema.column(c).kind, n)
            table.append_columns(full)
            count = n
        return Result([], Batch({}), rowcount=count)

    @staticmethod
    def _coerce(vec: Vector, kind: Kind) -> Vector:
        if vec.kind is kind:
            return vec
        if kind is Kind.FLOAT and vec.kind is Kind.INT:
            return Vector(Kind.FLOAT, vec.data.astype(np.float64), vec.null)
        if kind is Kind.DATE and vec.kind is Kind.INT:
            return Vector(Kind.DATE, vec.data, vec.null)
        if kind is Kind.INT and vec.kind in (Kind.DATE, Kind.FLOAT):
            return Vector(Kind.INT, vec.data.astype(np.int64), vec.null)
        if kind is Kind.STR:
            return Vector.from_values(
                Kind.STR, [None if vec.null[i] else str(vec.value(i)) for i in range(len(vec))]
            )
        raise ExecutionError(f"cannot coerce {vec.kind} to {kind}")

    def _table_batch(self, table_name: str) -> Batch:
        table = self.catalog.table(table_name)
        return Batch(
            {
                f"{table_name}.{c}": table.scan_column(c)
                for c in table.schema.column_names
            }
        )

    def _execute_delete(self, statement: A.Delete) -> Result:
        table = self.catalog.table(statement.table)
        if statement.where is None:
            mask = np.ones(table.num_rows, dtype=bool)
        else:
            batch = self._table_batch(statement.table)
            ctx = EvalContext(self._run_subquery)
            mask = evaluate(statement.where, batch, ctx).is_true()
        count = table.delete_where(mask)
        return Result([], Batch({}), rowcount=count)

    def _execute_update(self, statement: A.Update) -> Result:
        table = self.catalog.table(statement.table)
        batch = self._table_batch(statement.table)
        ctx = EvalContext(self._run_subquery)
        if statement.where is None:
            mask = np.ones(table.num_rows, dtype=bool)
        else:
            mask = evaluate(statement.where, batch, ctx).is_true()
        indices = np.flatnonzero(mask)
        if not len(indices):
            return Result([], Batch({}), rowcount=0)
        target = batch.take(indices)
        assignments: dict[str, list[Any]] = {}
        for column, expr in statement.assignments:
            table.schema.column(column)  # validates
            vec = evaluate(expr, target, ctx)
            assignments[column] = vec.to_list()
        count = table.update_rows(indices, assignments)
        return Result([], Batch({}), rowcount=count)
