"""Table and column statistics for the cost-based optimizer.

``gather_statistics`` corresponds to the statistics-collection step of
the TPC-DS database load (§5.2: "gather statistics for the test
database" is part of the timed load). The optimizer uses row counts,
per-column NDV and min/max to order joins and to estimate filter
selectivity; the paper argues skewed data makes exactly this hard, so
the estimator here is intentionally the classic uniformity-based one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from .sql import ast_nodes as A
from .storage import Table
from .types import Kind


@dataclass
class ColumnStats:
    ndv: int
    null_fraction: float
    min_value: Any = None
    max_value: Any = None


@dataclass
class TableStats:
    row_count: int
    columns: dict[str, ColumnStats] = field(default_factory=dict)


def gather_statistics(table: Table) -> TableStats:
    """Scan a table and compute optimizer statistics."""
    stats = TableStats(row_count=table.num_rows)
    for name, column in table.columns.items():
        vec = column.scan()
        n = len(vec)
        nulls = int(vec.null.sum())
        ndv = column.distinct_count()
        min_v = max_v = None
        if n - nulls > 0 and vec.kind in (Kind.INT, Kind.FLOAT, Kind.DATE):
            valid = vec.data[~vec.null]
            min_v = valid.min().item()
            max_v = valid.max().item()
        stats.columns[name] = ColumnStats(
            ndv=ndv,
            null_fraction=nulls / n if n else 0.0,
            min_value=min_v,
            max_value=max_v,
        )
    return stats


#: default selectivity guesses for predicate shapes the estimator cannot
#: quantify from statistics (classic System-R constants)
_DEFAULT_EQ = 0.05
_DEFAULT_RANGE = 0.25
_DEFAULT_LIKE = 0.1
_DEFAULT_OTHER = 0.33


def estimate_selectivity(
    predicate: A.Expr, stats: Optional[TableStats], binding: str
) -> float:
    """Estimated fraction of rows that satisfy ``predicate``.

    Uses NDV for equality and min/max interpolation for ranges when the
    statistics are available; otherwise falls back to fixed guesses.
    """
    if isinstance(predicate, A.BinaryOp) and predicate.op == "AND":
        conjuncts = _flatten_and(predicate)
        return conjunction_selectivity(
            [estimate_selectivity(c, stats, binding) for c in conjuncts]
        )
    if isinstance(predicate, A.BinaryOp) and predicate.op == "OR":
        a = estimate_selectivity(predicate.left, stats, binding)
        b = estimate_selectivity(predicate.right, stats, binding)
        return max(0.0, min(1.0, a + b - a * b))
    column = _single_column(predicate)
    col_stats = stats.columns.get(column) if (stats and column) else None
    if isinstance(predicate, A.BinaryOp) and predicate.op == "=":
        if col_stats and col_stats.ndv > 0:
            return min(1.0, 1.0 / col_stats.ndv)
        return _DEFAULT_EQ
    if isinstance(predicate, A.BinaryOp) and predicate.op in ("<", "<=", ">", ">="):
        bound = _literal_operand(predicate)
        if (
            col_stats
            and bound is not None
            and col_stats.min_value is not None
            and col_stats.max_value is not None
            and col_stats.max_value > col_stats.min_value
        ):
            span = col_stats.max_value - col_stats.min_value
            frac = (bound - col_stats.min_value) / span
            frac = min(1.0, max(0.0, frac))
            if predicate.op in (">", ">="):
                frac = 1.0 - frac
            return max(frac, 1e-4)
        return _DEFAULT_RANGE
    if isinstance(predicate, A.Between):
        if (
            col_stats
            and isinstance(predicate.low, A.Literal)
            and isinstance(predicate.high, A.Literal)
            and col_stats.min_value is not None
            and col_stats.max_value is not None
            and col_stats.max_value > col_stats.min_value
            and isinstance(predicate.low.value, (int, float))
            and isinstance(predicate.high.value, (int, float))
        ):
            span = col_stats.max_value - col_stats.min_value
            width = predicate.high.value - predicate.low.value
            return min(1.0, max(width / span, 1e-4))
        return _DEFAULT_RANGE
    if isinstance(predicate, A.InList):
        if col_stats and col_stats.ndv > 0:
            return min(1.0, len(predicate.items) / col_stats.ndv)
        return min(1.0, _DEFAULT_EQ * len(predicate.items))
    if isinstance(predicate, A.Like):
        return _DEFAULT_LIKE
    if isinstance(predicate, A.IsNull):
        if col_stats:
            frac = col_stats.null_fraction
            return (1.0 - frac) if predicate.negated else max(frac, 1e-4)
        return _DEFAULT_EQ
    if isinstance(predicate, A.UnaryOp) and predicate.op == "NOT":
        return max(0.0, 1.0 - estimate_selectivity(predicate.operand, stats, binding))
    return _DEFAULT_OTHER


def conjunction_selectivity(selectivities: list[float]) -> float:
    """Combine conjunct selectivities with exponential backoff.

    The classic independence assumption multiplies conjunct
    selectivities outright, which under-estimates badly on correlated
    columns (the paper's §4 point: skewed, correlated retail data is
    exactly where uniformity-based estimators break). Exponential
    backoff keeps the most selective conjunct at full weight and
    dampens each successive one by a square root
    (``s0 * s1^(1/2) * s2^(1/4) * ...``), bounding the compounding
    error of the independence assumption.
    """
    out = 1.0
    for i, sel in enumerate(sorted(selectivities)):
        out *= min(max(sel, 0.0), 1.0) ** (1.0 / 2.0 ** i)
    return min(out, 1.0)


def _flatten_and(predicate: A.Expr) -> list[A.Expr]:
    """The maximal AND-chain under ``predicate``, as a conjunct list."""
    if isinstance(predicate, A.BinaryOp) and predicate.op == "AND":
        return _flatten_and(predicate.left) + _flatten_and(predicate.right)
    return [predicate]


def _single_column(predicate: A.Expr) -> Optional[str]:
    refs = [n for n in A.walk(predicate) if isinstance(n, A.ColumnRef)]
    names = {r.name for r in refs}
    return names.pop() if len(names) == 1 else None


def _literal_operand(predicate: A.BinaryOp) -> Optional[float]:
    for side in (predicate.right, predicate.left):
        if isinstance(side, A.Literal) and isinstance(side.value, (int, float)):
            return float(side.value)
    return None
