"""Runtime column vectors.

A :class:`Vector` is the unit of data flowing between physical operators:
a numpy data array plus a boolean null mask. Strings are held as numpy
object arrays at runtime (dictionary encoding is a storage-layer concern,
see :mod:`repro.engine.storage`).

SQL three-valued logic is implemented by carrying the null mask through
every operation: comparisons involving NULL yield NULL, and boolean
combinators follow Kleene logic (``TRUE OR NULL = TRUE`` etc.).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

import numpy as np

from .errors import TypeError_
from .types import Kind

_NUMPY_DTYPE = {
    Kind.INT: np.int64,
    Kind.FLOAT: np.float64,
    Kind.STR: object,
    Kind.DATE: np.int64,
    Kind.BOOL: bool,
}

#: fill value used in data slots that are null (value is irrelevant, but a
#: deterministic fill keeps hashing and debugging stable)
_FILL: dict[Kind, Any] = {
    Kind.INT: 0,
    Kind.FLOAT: 0.0,
    Kind.STR: "",
    Kind.DATE: 0,
    Kind.BOOL: False,
}


@dataclass
class Vector:
    """A typed column of values with a null mask.

    ``data`` always has a valid (non-garbage) fill in null slots so that
    vectorized numpy operations never trip on None.
    """

    kind: Kind
    data: np.ndarray
    null: np.ndarray  # bool mask, True means NULL

    def __post_init__(self) -> None:
        if len(self.data) != len(self.null):
            raise ValueError("data / null length mismatch")

    # -- constructors -----------------------------------------------------

    @staticmethod
    def from_values(kind: Kind, values: Iterable[Any]) -> "Vector":
        """Build a vector from Python values; ``None`` becomes NULL."""
        values = list(values)
        n = len(values)
        null = np.fromiter((v is None for v in values), dtype=bool, count=n)
        if not null.any():
            # fast path: one numpy conversion, no per-value cleaning
            data = np.asarray(values, dtype=_NUMPY_DTYPE[kind])
            return Vector(kind, data, null)
        fill = _FILL[kind]
        cleaned = [fill if v is None else v for v in values]
        if kind is Kind.DATE:
            cleaned = [int(v) for v in cleaned]
        data = np.array(cleaned, dtype=_NUMPY_DTYPE[kind])
        return Vector(kind, data, null)

    @staticmethod
    def constant(kind: Kind, value: Any, n: int) -> "Vector":
        if value is None:
            return Vector.nulls(kind, n)
        data = np.full(n, value, dtype=_NUMPY_DTYPE[kind])
        return Vector(kind, data, np.zeros(n, dtype=bool))

    @staticmethod
    def nulls(kind: Kind, n: int) -> "Vector":
        data = np.full(n, _FILL[kind], dtype=_NUMPY_DTYPE[kind])
        return Vector(kind, data, np.ones(n, dtype=bool))

    @staticmethod
    def from_numpy(kind: Kind, data: np.ndarray, null: np.ndarray | None = None) -> "Vector":
        if null is None:
            null = np.zeros(len(data), dtype=bool)
        return Vector(kind, data, null)

    # -- basics ------------------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Approximate memory footprint in bytes: the numpy buffers,
        plus a flat per-element payload estimate for object (string)
        arrays, whose ``.nbytes`` counts only the pointers."""
        total = self.data.nbytes + self.null.nbytes
        if self.kind is Kind.STR:
            total += 56 * len(self.data)  # CPython small-str overhead
        return total

    def __len__(self) -> int:
        return len(self.data)

    def value(self, i: int) -> Any:
        """Python value at row ``i`` (``None`` for NULL)."""
        if self.null[i]:
            return None
        v = self.data[i]
        if self.kind is Kind.INT or self.kind is Kind.DATE:
            return int(v)
        if self.kind is Kind.FLOAT:
            return float(v)
        if self.kind is Kind.BOOL:
            return bool(v)
        return v

    def to_list(self) -> list[Any]:
        return [self.value(i) for i in range(len(self))]

    def take(self, indices: np.ndarray) -> "Vector":
        return Vector(self.kind, self.data[indices], self.null[indices])

    def filter(self, mask: np.ndarray) -> "Vector":
        return Vector(self.kind, self.data[mask], self.null[mask])

    def copy(self) -> "Vector":
        return Vector(self.kind, self.data.copy(), self.null.copy())

    def slice(self, start: int, stop: int) -> "Vector":
        """A zero-copy view of rows ``[start, stop)`` (numpy slices
        share the underlying buffers — the morsel cut)."""
        return Vector(self.kind, self.data[start:stop], self.null[start:stop])

    @staticmethod
    def concat(parts: Sequence["Vector"]) -> "Vector":
        if not parts:
            raise ValueError("cannot concat zero vectors")
        kind = parts[0].kind
        if any(p.kind is not kind for p in parts):
            raise TypeError_("concat of mismatched vector kinds")
        data = np.concatenate([p.data for p in parts])
        null = np.concatenate([p.null for p in parts])
        return Vector(kind, data, null)

    # -- comparisons (return BOOL vectors with 3VL nulls) -------------------

    def _binary_null(self, other: "Vector") -> np.ndarray:
        return self.null | other.null

    def compare(self, op: str, other: "Vector") -> "Vector":
        a, b = _coerce_pair(self, other)
        if op == "=":
            res = a.data == b.data
        elif op in ("<>", "!="):
            res = a.data != b.data
        elif op == "<":
            res = a.data < b.data
        elif op == "<=":
            res = a.data <= b.data
        elif op == ">":
            res = a.data > b.data
        elif op == ">=":
            res = a.data >= b.data
        else:  # pragma: no cover - parser restricts ops
            raise TypeError_(f"unknown comparison {op!r}")
        null = a.null | b.null
        res = np.asarray(res, dtype=bool)
        res[null] = False
        return Vector(Kind.BOOL, res, null)

    # -- arithmetic ---------------------------------------------------------

    def arith(self, op: str, other: "Vector") -> "Vector":
        a, b = _coerce_pair(self, other)
        if a.kind is Kind.STR:
            if op == "||":
                data = np.array(
                    [x + y for x, y in zip(a.data, b.data)], dtype=object
                )
                return Vector(Kind.STR, data, a.null | b.null)
            raise TypeError_(f"operator {op!r} not defined for strings")
        null = a.null | b.null
        x = a.data.astype(np.float64) if op == "/" else a.data
        with np.errstate(divide="ignore", invalid="ignore"):
            if op == "+":
                data = a.data + b.data
            elif op == "-":
                data = a.data - b.data
            elif op == "*":
                data = a.data * b.data
            elif op == "/":
                denom = b.data.astype(np.float64)
                data = np.where(denom == 0, np.nan, x / np.where(denom == 0, 1.0, denom))
                null = null | (denom == 0)
            else:  # pragma: no cover
                raise TypeError_(f"unknown arithmetic op {op!r}")
        kind = Kind.FLOAT if (op == "/" or a.kind is Kind.FLOAT or b.kind is Kind.FLOAT) else a.kind
        data = np.asarray(data, dtype=_NUMPY_DTYPE[kind])
        data = data.copy()
        data[null] = _FILL[kind]
        return Vector(kind, data, null)

    def negate(self) -> "Vector":
        if self.kind not in (Kind.INT, Kind.FLOAT):
            raise TypeError_("unary minus on non-numeric vector")
        return Vector(self.kind, -self.data, self.null.copy())

    # -- boolean combinators (Kleene 3VL) ------------------------------------

    def and_(self, other: "Vector") -> "Vector":
        _require_bool(self, other)
        false_a = ~self.data & ~self.null
        false_b = ~other.data & ~other.null
        res_false = false_a | false_b
        res_true = (self.data & ~self.null) & (other.data & ~other.null)
        null = ~res_false & ~res_true
        return Vector(Kind.BOOL, res_true, null)

    def or_(self, other: "Vector") -> "Vector":
        _require_bool(self, other)
        res_true = (self.data & ~self.null) | (other.data & ~other.null)
        res_false = (~self.data & ~self.null) & (~other.data & ~other.null)
        null = ~res_true & ~res_false
        return Vector(Kind.BOOL, res_true, null)

    def not_(self) -> "Vector":
        _require_bool(self)
        data = ~self.data
        data[self.null] = False
        return Vector(Kind.BOOL, data, self.null.copy())

    def is_true(self) -> np.ndarray:
        """Selection mask for WHERE: rows where the predicate is TRUE
        (NULL and FALSE both drop the row)."""
        _require_bool(self)
        return self.data & ~self.null


def _require_bool(*vectors: Vector) -> None:
    for v in vectors:
        if v.kind is not Kind.BOOL:
            raise TypeError_(f"expected boolean vector, got {v.kind}")


def _coerce_pair(a: Vector, b: Vector) -> tuple[Vector, Vector]:
    """Coerce a pair of vectors to a common kind for comparison/arithmetic.

    INT and DATE inter-operate as integers; INT widens to FLOAT.
    """
    if a.kind is b.kind:
        return a, b
    numeric = {Kind.INT, Kind.FLOAT, Kind.DATE}
    if a.kind in numeric and b.kind in numeric:
        if Kind.FLOAT in (a.kind, b.kind):
            return _to_float(a), _to_float(b)
        # INT vs DATE: compare as raw int64 (dates are epoch days)
        return a, b
    raise TypeError_(f"cannot combine {a.kind} with {b.kind}")


def _to_float(v: Vector) -> Vector:
    if v.kind is Kind.FLOAT:
        return v
    return Vector(Kind.FLOAT, v.data.astype(np.float64), v.null)
