"""The database catalog: tables, indexes, statistics, materialized views.

The catalog is the hub every other engine component binds against. It
also enforces the TPC-DS auxiliary-structure rule when asked to
(`restrict_aux_on` — the benchmark sets this to the ad-hoc channel's
fact tables, making complex auxiliary structures on them illegal,
mirroring Clause 2.6 of the specification as described in §2.1/§4.1).
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from .errors import CatalogError
from .indexes import BitmapIndex, HashIndex, SortedIndex
from .stats import TableStats, gather_statistics
from .storage import Table
from .types import TableSchema
from .virtual import VirtualTable

_INDEX_TYPES = {"hash": HashIndex, "sorted": SortedIndex, "bitmap": BitmapIndex}

#: index flavors considered "basic" (allowed everywhere); bitmap indexes and
#: materialized views are "complex" auxiliary structures restricted to the
#: reporting part of the schema when a restriction is installed
_BASIC_INDEX_TYPES = {"hash", "sorted"}


class Catalog:
    """Tables, statistics, indexes and materialized views, plus the aux-structure policy."""
    def __init__(self):
        self._tables: dict[str, Table] = {}
        self._stats: dict[str, TableStats] = {}
        self._indexes: dict[tuple[str, str, str], object] = {}
        self._matviews: dict[str, object] = {}
        #: read-only virtual tables (``sys.*`` introspection), resolved
        #: by name like base tables but kept out of ``table_names`` /
        #: ``gather_stats`` so audits and stat sweeps never see them
        self._virtual: dict[str, VirtualTable] = {}
        #: when set, complex aux structures are ILLEGAL on these tables
        #: (the benchmark lists the ad-hoc channel's fact tables here;
        #: shared dimensions remain eligible because the channel split
        #: divides fact tables, not dimensions)
        self.restrict_aux_on: Optional[set[str]] = None

    # -- tables ---------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> Table:
        if schema.name in self._tables:
            raise CatalogError(f"table {schema.name} already exists")
        table = Table(schema)
        self._tables[schema.name] = table
        return table

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise CatalogError(f"unknown table {name}")
        del self._tables[name]
        self._stats.pop(name, None)
        self._indexes = {
            k: v for k, v in self._indexes.items() if k[0] != name
        }

    def table(self, name: str):
        try:
            return self._tables[name]
        except KeyError:
            virtual = self._virtual.get(name)
            if virtual is not None:
                return virtual
            raise CatalogError(f"unknown table {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables or name in self._virtual

    @property
    def table_names(self) -> list[str]:
        return sorted(self._tables)

    # -- virtual tables -------------------------------------------------------

    def register_virtual(self, provider) -> "VirtualTable":
        """Register a :class:`~repro.engine.virtual.VirtualTableProvider`
        under its qualified name (e.g. ``sys.statements``)."""
        if provider.name in self._tables:
            raise CatalogError(f"name {provider.name} already in use")
        virtual = VirtualTable(provider)
        self._virtual[provider.name] = virtual
        return virtual

    def is_virtual(self, name: str) -> bool:
        return name in self._virtual

    @property
    def virtual_names(self) -> list[str]:
        return sorted(self._virtual)

    # -- statistics --------------------------------------------------------------

    def gather_stats(self, name: Optional[str] = None) -> None:
        names = [name] if name else list(self._tables)
        for n in names:
            self._stats[n] = gather_statistics(self.table(n))

    def stats(self, name: str) -> Optional[TableStats]:
        return self._stats.get(name)

    def install_stats(self, stats: dict[str, TableStats]) -> None:
        """Adopt precomputed statistics (the column store persists the
        gathered stats in its manifest so reopening skips the
        full-table scan ``gather_stats`` would cost)."""
        self._stats.update(stats)

    # -- indexes -------------------------------------------------------------------

    def create_index(self, table: str, column: str, index_type: str = "hash"):
        if index_type not in _INDEX_TYPES:
            raise CatalogError(f"unknown index type {index_type!r}")
        if index_type not in _BASIC_INDEX_TYPES:
            self._check_aux_allowed(table, f"{index_type} index")
        if table in self._virtual:
            raise CatalogError(f"cannot index system table {table!r}")
        tab = self.table(table)
        if not tab.schema.has_column(column):
            raise CatalogError(f"table {table} has no column {column}")
        key = (table, column, index_type)
        if key not in self._indexes:
            self._indexes[key] = _INDEX_TYPES[index_type](tab, column)
        return self._indexes[key]

    def index(self, table: str, column: str, index_type: str = "hash"):
        return self._indexes.get((table, column, index_type))

    def drop_index(self, table: str, column: str, index_type: str) -> None:
        self._indexes.pop((table, column, index_type), None)

    @property
    def index_keys(self) -> list[tuple[str, str, str]]:
        return sorted(self._indexes)

    def bitmap_rows(self, table: str, column: str, keys: Iterable) -> Optional[np.ndarray]:
        """Row positions matching any key, via the bitmap index, when one
        exists; None otherwise (caller falls back to a scan filter)."""
        index = self.index(table, column, "bitmap")
        if index is None:
            return None
        return index.rows_for_keys(keys)

    def rebuild_indexes(self) -> int:
        """Force-rebuild every index (charged to the data-maintenance run)."""
        for index in self._indexes.values():
            index.invalidate()
            index._ensure()
        return len(self._indexes)

    # -- materialized views ---------------------------------------------------------

    def register_matview(self, view) -> None:
        for base in view.base_tables:
            self._check_aux_allowed(base, "materialized view")
        if view.name in self._matviews or view.name in self._tables:
            raise CatalogError(f"name {view.name} already in use")
        self._matviews[view.name] = view

    def matview(self, name: str):
        try:
            return self._matviews[name]
        except KeyError:
            raise CatalogError(f"unknown materialized view {name!r}") from None

    def has_matview(self, name: str) -> bool:
        return name in self._matviews

    def drop_matview(self, name: str) -> None:
        self._matviews.pop(name, None)

    @property
    def matviews(self) -> list:
        return list(self._matviews.values())

    # -- aux-structure policy -----------------------------------------------------------

    def _check_aux_allowed(self, table: str, what: str) -> None:
        if self.restrict_aux_on is not None and table in self.restrict_aux_on:
            raise CatalogError(
                f"{what} on {table!r} violates the ad-hoc implementation "
                f"rules: complex auxiliary structures are not allowed on "
                f"the ad-hoc part of the schema ({sorted(self.restrict_aux_on)})"
            )
