"""In-memory columnar SQL engine — the DBMS substrate for the TPC-DS
reproduction (see DESIGN.md for the substitution rationale).

Public surface: :class:`Database`, :class:`Result`,
:class:`OptimizerSettings`, the error hierarchy, and the schema type
constructors re-exported from :mod:`repro.engine.types`.
"""

from .database import Database, QueryTrace, Result
from .errors import (
    CatalogError,
    ConstraintError,
    EngineError,
    ExecutionError,
    MemoryBudgetExceeded,
    PlanningError,
    QueryCancelled,
    QueryTimeout,
    ResourceError,
    SqlSyntaxError,
    StoreError,
)
from .governor import ResourceContext
from .optimizer import OptimizerSettings
from .parallel import WorkerPool, get_pool, shutdown_pool
from .types import (
    ColumnDef,
    Kind,
    SqlType,
    TableSchema,
    char,
    date,
    date_to_epoch_days,
    decimal,
    epoch_days_to_date,
    format_date,
    identifier,
    integer,
    parse_date,
    time_of_day,
    varchar,
)

__all__ = [
    "Database",
    "QueryTrace",
    "Result",
    "OptimizerSettings",
    "EngineError",
    "SqlSyntaxError",
    "PlanningError",
    "ExecutionError",
    "ResourceError",
    "QueryTimeout",
    "QueryCancelled",
    "MemoryBudgetExceeded",
    "ResourceContext",
    "WorkerPool",
    "get_pool",
    "shutdown_pool",
    "CatalogError",
    "ConstraintError",
    "StoreError",
    "TableSchema",
    "ColumnDef",
    "SqlType",
    "Kind",
    "identifier",
    "integer",
    "decimal",
    "char",
    "varchar",
    "date",
    "time_of_day",
    "parse_date",
    "format_date",
    "date_to_epoch_days",
    "epoch_days_to_date",
]
