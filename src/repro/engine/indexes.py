"""Secondary index structures.

Three index flavors back the access paths the paper enumerates (§2.1):

* :class:`HashIndex` — equality probes; used by the data-maintenance
  workload's business-key lookups (Figures 8–10).
* :class:`SortedIndex` — range probes (BETWEEN on dates), a stand-in for
  a B-tree.
* :class:`BitmapIndex` — per-key row-position arrays on fact-table
  foreign-key columns; the star transformation intersects them to reduce
  the fact scan before any join runs.

All indexes are lazily rebuilt after DML: the owning table calls the
registered invalidation hook and the next probe rebuilds.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from .storage import Table


class _LazyIndex:
    """Shared rebuild-on-demand machinery."""

    def __init__(self, table: Table, column: str):
        self.table = table
        self.column = column
        self._stale = True
        table.register_mutation_listener(self.invalidate)

    def invalidate(self) -> None:
        self._stale = True

    def _ensure(self) -> None:
        if self._stale:
            self._rebuild()
            self._stale = False

    def _rebuild(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class HashIndex(_LazyIndex):
    """value -> array of row positions."""

    def _rebuild(self) -> None:
        vec = self.table.scan_column(self.column)
        self._map: dict[Any, list[int]] = {}
        for i in range(len(vec)):
            if vec.null[i]:
                continue
            self._map.setdefault(vec.value(i), []).append(i)

    def lookup(self, value: Any) -> np.ndarray:
        self._ensure()
        return np.asarray(self._map.get(value, []), dtype=np.int64)

    def lookup_many(self, values) -> np.ndarray:
        self._ensure()
        rows: list[int] = []
        for v in values:
            rows.extend(self._map.get(v, ()))
        return np.asarray(sorted(set(rows)), dtype=np.int64)

    @property
    def num_keys(self) -> int:
        self._ensure()
        return len(self._map)


class SortedIndex(_LazyIndex):
    """Sorted (value, row) pairs supporting range scans."""

    def _rebuild(self) -> None:
        vec = self.table.scan_column(self.column)
        valid = np.flatnonzero(~vec.null)
        keys = vec.data[valid]
        order = np.argsort(keys, kind="stable")
        self._keys = keys[order]
        self._rows = valid[order]

    def range(self, low: Any = None, high: Any = None) -> np.ndarray:
        """Row positions with low <= value <= high (either bound optional)."""
        self._ensure()
        lo = 0 if low is None else int(np.searchsorted(self._keys, low, side="left"))
        hi = (
            len(self._keys)
            if high is None
            else int(np.searchsorted(self._keys, high, side="right"))
        )
        return np.sort(self._rows[lo:hi])

    def lookup(self, value: Any) -> np.ndarray:
        return self.range(value, value)


class BitmapIndex(_LazyIndex):
    """key value -> row-position array, for star-transformation semi-joins."""

    def _rebuild(self) -> None:
        vec = self.table.scan_column(self.column)
        valid = np.flatnonzero(~vec.null)
        keys = vec.data[valid]
        order = np.argsort(keys, kind="stable")
        self._keys = keys[order]
        self._rows = valid[order]

    def rows_for_keys(self, keys) -> np.ndarray:
        """Union of row positions for all keys (sorted, deduplicated)."""
        self._ensure()
        wanted = np.asarray(sorted(keys), dtype=self._keys.dtype if len(self._keys) else np.int64)
        lo = np.searchsorted(self._keys, wanted, side="left")
        hi = np.searchsorted(self._keys, wanted, side="right")
        parts = [self._rows[a:b] for a, b in zip(lo, hi) if b > a]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(parts))
