"""Materialized views with transparent query rewrite.

TPC-DS allows "complex auxiliary data structures" — materialized
pre-joins and pre-aggregations used transparently via query rewrite —
on the reporting part of the schema only (§2.1, §5.3). This module
implements exactly that mechanism:

* a view is defined by an aggregate query (joins + optional filters +
  GROUP BY + SUM/COUNT/MIN/MAX/AVG);
* creation canonicalizes the definition into a *signature* (base tables,
  join-condition set, filter set, group columns, aggregate map) and
  materializes the result into a stored table;
* at query time :func:`try_rewrite` structurally matches an incoming
  SELECT against the registered signatures and, when the view subsumes
  the query (same joins, filters a subset, group columns a superset,
  aggregates derivable), rewrites the query to re-aggregate from the
  view (``SUM(x)`` → ``SUM(sum_x)``, ``COUNT`` → ``SUM(cnt)``,
  ``AVG`` → ``SUM(sum_x)/SUM(cnt_x)`` …).

The matcher is conservative: any feature it does not model (subqueries
in WHERE, outer joins, self-joins, HAVING in the view…) simply makes
the view unusable for that query — never an incorrect rewrite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from .batch import Batch
from .errors import CatalogError, PlanningError
from .sql import ast_nodes as A
from .sql.parser import AGGREGATE_FUNCS, parse_query
from .storage import Table
from .types import ColumnDef, Kind, SqlType, TableSchema
from .vector import Vector

_KIND_TO_SQL = {
    Kind.INT: SqlType("integer", Kind.INT, 11),
    Kind.FLOAT: SqlType("decimal(15,2)", Kind.FLOAT, 17),
    Kind.STR: SqlType("varchar(100)", Kind.STR, 100),
    Kind.DATE: SqlType("date", Kind.DATE, 10),
    Kind.BOOL: SqlType("integer", Kind.BOOL, 1),
}

JoinPair = frozenset  # frozenset({(table, col), (table, col)})


@dataclass
class ViewSignature:
    base_tables: frozenset[str]
    join_pairs: frozenset
    filters: frozenset  # canonical filter conjuncts
    group_cols: tuple[A.ColumnRef, ...]  # canonical
    #: canonical aggregate call -> stored column name
    agg_map: dict[A.FuncCall, str] = field(default_factory=dict)
    #: canonical group column -> stored column name
    group_map: dict[A.ColumnRef, str] = field(default_factory=dict)


@dataclass
class MaterializedView:
    name: str
    sql: str
    signature: ViewSignature
    storage: Table

    @property
    def base_tables(self) -> frozenset[str]:
        return self.signature.base_tables

    @property
    def column_names(self) -> list[str]:
        return self.storage.schema.column_names

    @property
    def num_rows(self) -> int:
        return self.storage.num_rows

    def refresh(self, execute: Callable[[str], Batch]) -> None:
        """Recompute the view from its definition (data-maintenance step)."""
        batch = execute(self._storage_sql)
        fresh = Table(self.storage.schema)
        fresh.append_columns(dict(zip(self.column_names, batch.columns.values())))
        self.storage = fresh

    _storage_sql: str = ""


# --------------------------------------------------------------------------
# canonicalization
# --------------------------------------------------------------------------


class _Canonicalizer:
    """Rewrites column references to carry their *table* (not alias) name."""

    def __init__(self, alias_to_table: dict[str, str], catalog):
        self._alias_to_table = alias_to_table
        self._catalog = catalog

    def resolve(self, ref: A.ColumnRef) -> A.ColumnRef:
        if ref.table is not None:
            table = self._alias_to_table.get(ref.table)
            if table is None:
                raise _Unsupported(f"unknown alias {ref.table}")
            return A.ColumnRef(ref.name, table)
        owners = [
            t
            for t in set(self._alias_to_table.values())
            if self._catalog.table(t).schema.has_column(ref.name)
        ]
        if len(owners) != 1:
            raise _Unsupported(f"cannot uniquely resolve column {ref.name}")
        return A.ColumnRef(ref.name, owners[0])

    def canonical(self, expr: A.Expr) -> A.Expr:
        if isinstance(expr, A.ColumnRef):
            return self.resolve(expr)
        if isinstance(expr, A.Literal):
            return expr
        if isinstance(expr, A.BinaryOp):
            return A.BinaryOp(expr.op, self.canonical(expr.left), self.canonical(expr.right))
        if isinstance(expr, A.UnaryOp):
            return A.UnaryOp(expr.op, self.canonical(expr.operand))
        if isinstance(expr, A.FuncCall):
            return A.FuncCall(
                expr.name,
                tuple(self.canonical(a) for a in expr.args),
                expr.distinct,
                expr.is_star,
            )
        if isinstance(expr, A.Case):
            return A.Case(
                tuple((self.canonical(c), self.canonical(r)) for c, r in expr.whens),
                None if expr.else_ is None else self.canonical(expr.else_),
            )
        if isinstance(expr, A.Between):
            return A.Between(
                self.canonical(expr.expr),
                self.canonical(expr.low),
                self.canonical(expr.high),
                expr.negated,
            )
        if isinstance(expr, A.InList):
            return A.InList(
                self.canonical(expr.expr),
                tuple(self.canonical(i) for i in expr.items),
                expr.negated,
            )
        if isinstance(expr, A.IsNull):
            return A.IsNull(self.canonical(expr.expr), expr.negated)
        if isinstance(expr, A.Like):
            return A.Like(self.canonical(expr.expr), expr.pattern, expr.negated)
        if isinstance(expr, A.Cast):
            return A.Cast(self.canonical(expr.expr), expr.type_name)
        if isinstance(expr, A.WindowFunc):
            return A.WindowFunc(
                self.canonical(expr.func),
                tuple(self.canonical(p) for p in expr.partition_by),
                tuple(
                    A.SortKey(self.canonical(k.expr), k.ascending, k.nulls_first)
                    for k in expr.order_by
                ),
            )
        raise _Unsupported(f"expression {type(expr).__name__} not canonicalizable")


class _Unsupported(Exception):
    """Internal: structure outside the rewrite model; abort matching."""


def _flatten_from(
    refs: tuple[A.TableRef, ...], catalog
) -> tuple[dict[str, str], list[A.Expr]]:
    """Collapse a FROM clause into (alias -> table) plus ON conjuncts.

    Only named base tables and inner joins are supported; anything else
    raises ``_Unsupported``.
    """
    alias_to_table: dict[str, str] = {}
    conjuncts: list[A.Expr] = []

    def visit(ref: A.TableRef) -> None:
        if isinstance(ref, A.NamedTable):
            if not catalog.has_table(ref.name):
                raise _Unsupported(f"{ref.name} is not a base table")
            if ref.binding in alias_to_table:
                raise _Unsupported(f"duplicate binding {ref.binding} (self join)")
            alias_to_table[ref.binding] = ref.name
            return
        if isinstance(ref, A.JoinRef):
            if ref.kind != "inner":
                raise _Unsupported(f"{ref.kind} join not supported by rewrite")
            visit(ref.left)
            visit(ref.right)
            if ref.on is not None:
                conjuncts.extend(_split_and(ref.on))
            return
        raise _Unsupported("derived tables not supported by rewrite")

    for ref in refs:
        visit(ref)
    tables = set(alias_to_table.values())
    if len(tables) != len(alias_to_table):
        raise _Unsupported("self join")
    return alias_to_table, conjuncts


def _split_and(expr: A.Expr) -> list[A.Expr]:
    if isinstance(expr, A.BinaryOp) and expr.op == "AND":
        return _split_and(expr.left) + _split_and(expr.right)
    return [expr]


@dataclass
class _AnalyzedSelect:
    alias_to_table: dict[str, str]
    join_pairs: frozenset
    filters: frozenset
    canon: _Canonicalizer
    core: A.SelectCore


def _analyze_select(core: A.SelectCore, catalog) -> _AnalyzedSelect:
    alias_to_table, on_conjuncts = _flatten_from(core.from_, catalog)
    canon = _Canonicalizer(alias_to_table, catalog)
    conjuncts = list(on_conjuncts)
    if core.where is not None:
        conjuncts.extend(_split_and(core.where))
    join_pairs = set()
    filters = set()
    for conjunct in conjuncts:
        pair = _as_join_pair(conjunct, canon)
        if pair is not None:
            join_pairs.add(pair)
        else:
            filters.add(canon.canonical(conjunct))
    return _AnalyzedSelect(
        alias_to_table, frozenset(join_pairs), frozenset(filters), canon, core
    )


def _as_join_pair(conjunct: A.Expr, canon: _Canonicalizer):
    if (
        isinstance(conjunct, A.BinaryOp)
        and conjunct.op == "="
        and isinstance(conjunct.left, A.ColumnRef)
        and isinstance(conjunct.right, A.ColumnRef)
    ):
        a = canon.resolve(conjunct.left)
        b = canon.resolve(conjunct.right)
        if a.table != b.table:
            return frozenset({(a.table, a.name), (b.table, b.name)})
    return None


# --------------------------------------------------------------------------
# view creation
# --------------------------------------------------------------------------


def define_view(name: str, sql: str, catalog, execute) -> MaterializedView:
    """Parse, validate, canonicalize and materialize a view definition.

    ``execute`` runs a SQL string and returns the result :class:`Batch`
    (supplied by the database facade to avoid a circular import).
    """
    query = parse_query(sql)
    if query.ctes or query.order_by or query.limit is not None:
        raise CatalogError("view definitions cannot have CTEs, ORDER BY or LIMIT")
    if not isinstance(query.body, A.SelectCore):
        raise CatalogError("view definitions cannot use set operations")
    core = query.body
    if core.distinct or core.group_rollup or core.having is not None:
        raise CatalogError("view definitions cannot use DISTINCT, ROLLUP or HAVING")
    try:
        analyzed = _analyze_select(core, catalog)
    except _Unsupported as exc:
        raise CatalogError(f"view definition not rewritable: {exc}") from exc

    canon = analyzed.canon
    group_cols: list[A.ColumnRef] = []
    for g in core.group_by:
        if not isinstance(g, A.ColumnRef):
            raise CatalogError("view GROUP BY must be plain columns")
        group_cols.append(canon.resolve(g))

    # decompose select list: group columns + aggregates (AVG splits into
    # SUM and COUNT so re-aggregation stays correct)
    agg_calls: list[A.FuncCall] = []
    for item in core.items:
        expr = item.expr
        if isinstance(expr, A.ColumnRef):
            if canon.resolve(expr) not in group_cols:
                raise CatalogError(f"non-grouped column {expr} in view select list")
            continue
        if isinstance(expr, A.FuncCall) and expr.name in AGGREGATE_FUNCS:
            if expr.distinct:
                raise CatalogError("DISTINCT aggregates are not re-aggregable")
            agg_calls.append(canon.canonical(expr))
            continue
        raise CatalogError("view select items must be group columns or aggregates")

    expanded: list[A.FuncCall] = []
    for call in agg_calls:
        if call.name == "AVG":
            expanded.append(A.FuncCall("SUM", call.args))
            expanded.append(A.FuncCall("COUNT", call.args))
        elif call.name in ("SUM", "MIN", "MAX"):
            expanded.append(call)
            if call.name == "SUM":
                expanded.append(A.FuncCall("COUNT", call.args))
        elif call.name == "COUNT":
            expanded.append(call)
        else:
            raise CatalogError(f"aggregate {call.name} is not re-aggregable")
    # always store a row count so COUNT(*) queries can rewrite
    expanded.append(A.FuncCall("COUNT", (), is_star=True))
    deduped: list[A.FuncCall] = []
    for call in expanded:
        if call not in deduped:
            deduped.append(call)

    signature = ViewSignature(
        base_tables=frozenset(analyzed.alias_to_table.values()),
        join_pairs=analyzed.join_pairs,
        filters=analyzed.filters,
        group_cols=tuple(group_cols),
        agg_map={call: f"a{i}" for i, call in enumerate(deduped)},
        group_map={col: f"k{i}" for i, col in enumerate(group_cols)},
    )

    storage_sql = _storage_sql(signature, analyzed.alias_to_table)
    batch = execute(storage_sql)
    columns = []
    for out_name, vec in batch.columns.items():
        columns.append(ColumnDef(out_name, _KIND_TO_SQL[vec.kind]))
    storage = Table(TableSchema(name, columns))
    storage.append_columns(dict(batch.columns))
    view = MaterializedView(name, sql, signature, storage)
    view._storage_sql = storage_sql
    return view


def _render(expr: A.Expr) -> str:
    """Render a canonical expression back to SQL text."""
    if isinstance(expr, A.ColumnRef):
        return f"{expr.table}.{expr.name}" if expr.table else expr.name
    if isinstance(expr, A.Literal):
        if expr.value is None:
            return "NULL"
        if expr.is_date:
            from .types import format_date

            return f"date '{format_date(expr.value)}'"
        if isinstance(expr.value, str):
            escaped = expr.value.replace("'", "''")
            return f"'{escaped}'"
        if isinstance(expr.value, bool):
            return "TRUE" if expr.value else "FALSE"
        return repr(expr.value)
    if isinstance(expr, A.BinaryOp):
        return f"({_render(expr.left)} {expr.op} {_render(expr.right)})"
    if isinstance(expr, A.UnaryOp):
        return f"({expr.op} {_render(expr.operand)})"
    if isinstance(expr, A.FuncCall):
        if expr.is_star:
            return f"{expr.name}(*)"
        inner = ", ".join(_render(a) for a in expr.args)
        prefix = "DISTINCT " if expr.distinct else ""
        return f"{expr.name}({prefix}{inner})"
    if isinstance(expr, A.Between):
        word = "NOT BETWEEN" if expr.negated else "BETWEEN"
        return f"({_render(expr.expr)} {word} {_render(expr.low)} AND {_render(expr.high)})"
    if isinstance(expr, A.InList):
        word = "NOT IN" if expr.negated else "IN"
        inner = ", ".join(_render(i) for i in expr.items)
        return f"({_render(expr.expr)} {word} ({inner}))"
    if isinstance(expr, A.IsNull):
        word = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"({_render(expr.expr)} {word})"
    if isinstance(expr, A.Like):
        word = "NOT LIKE" if expr.negated else "LIKE"
        escaped = expr.pattern.replace("'", "''")
        suffix = ""
        if expr.escape is not None:
            suffix = f" ESCAPE '{expr.escape.replace(chr(39), chr(39) * 2)}'"
        return f"({_render(expr.expr)} {word} '{escaped}'{suffix})"
    if isinstance(expr, A.Cast):
        return f"CAST({_render(expr.expr)} AS {expr.type_name})"
    if isinstance(expr, A.Case):
        parts = ["CASE"]
        for cond, result in expr.whens:
            parts.append(f"WHEN {_render(cond)} THEN {_render(result)}")
        if expr.else_ is not None:
            parts.append(f"ELSE {_render(expr.else_)}")
        parts.append("END")
        return " ".join(parts)
    raise PlanningError(f"cannot render {type(expr).__name__}")


def _storage_sql(signature: ViewSignature, alias_to_table: dict[str, str]) -> str:
    """SQL that materializes the view contents (canonical table names)."""
    select_parts = [
        f"{_render(col)} AS {name}" for col, name in signature.group_map.items()
    ]
    select_parts += [
        f"{_render(call)} AS {name}" for call, name in signature.agg_map.items()
    ]
    tables = sorted(signature.base_tables)
    where_parts = []
    for pair in sorted(signature.join_pairs, key=lambda p: sorted(p)):
        (t1, c1), (t2, c2) = sorted(pair)
        where_parts.append(f"{t1}.{c1} = {t2}.{c2}")
    where_parts += [_render(f) for f in sorted(signature.filters, key=_render)]
    sql = "SELECT " + ", ".join(select_parts) + " FROM " + ", ".join(tables)
    if where_parts:
        sql += " WHERE " + " AND ".join(where_parts)
    if signature.group_map:
        sql += " GROUP BY " + ", ".join(_render(c) for c in signature.group_map)
    return sql


# --------------------------------------------------------------------------
# query rewrite
# --------------------------------------------------------------------------


def try_rewrite(query: A.Query, catalog, views: list[MaterializedView]) -> Optional[A.Query]:
    """Rewrite ``query`` to read from a matching materialized view.

    Returns the rewritten query, or None when no view applies.
    """
    if query.ctes or not isinstance(query.body, A.SelectCore):
        return None
    core = query.body
    if core.group_rollup or core.distinct:
        return None
    try:
        analyzed = _analyze_select(core, catalog)
    except _Unsupported:
        return None
    for view in views:
        rewritten = _rewrite_with(analyzed, query, view)
        if rewritten is not None:
            return rewritten
    return None


def _rewrite_with(
    analyzed: _AnalyzedSelect, query: A.Query, view: MaterializedView
) -> Optional[A.Query]:
    sig = view.signature
    if frozenset(analyzed.alias_to_table.values()) != sig.base_tables:
        return None
    if analyzed.join_pairs != sig.join_pairs:
        return None
    if not sig.filters <= analyzed.filters:
        return None
    leftover = analyzed.filters - sig.filters
    canon = analyzed.canon
    core = analyzed.core

    group_lookup = dict(sig.group_map)

    def map_expr(expr: A.Expr) -> A.Expr:
        """Map a canonical expression onto view columns; raise when not
        derivable."""
        if isinstance(expr, A.ColumnRef):
            stored = group_lookup.get(expr)
            if stored is None:
                raise _Unsupported(f"{expr} not a view group column")
            return A.ColumnRef(stored)
        if isinstance(expr, A.FuncCall) and expr.name in AGGREGATE_FUNCS:
            return _derive_aggregate(expr, sig)
        if isinstance(expr, A.Literal):
            return expr
        if isinstance(expr, A.BinaryOp):
            return A.BinaryOp(expr.op, map_expr(expr.left), map_expr(expr.right))
        if isinstance(expr, A.UnaryOp):
            return A.UnaryOp(expr.op, map_expr(expr.operand))
        if isinstance(expr, A.Case):
            return A.Case(
                tuple((map_expr(c), map_expr(r)) for c, r in expr.whens),
                None if expr.else_ is None else map_expr(expr.else_),
            )
        if isinstance(expr, A.Between):
            return A.Between(
                map_expr(expr.expr), map_expr(expr.low), map_expr(expr.high), expr.negated
            )
        if isinstance(expr, A.InList):
            return A.InList(
                map_expr(expr.expr), tuple(map_expr(i) for i in expr.items), expr.negated
            )
        if isinstance(expr, A.IsNull):
            return A.IsNull(map_expr(expr.expr), expr.negated)
        if isinstance(expr, A.Like):
            return A.Like(map_expr(expr.expr), expr.pattern, expr.negated)
        if isinstance(expr, A.Cast):
            return A.Cast(map_expr(expr.expr), expr.type_name)
        if isinstance(expr, A.FuncCall):
            return A.FuncCall(
                expr.name, tuple(map_expr(a) for a in expr.args), expr.distinct, expr.is_star
            )
        if isinstance(expr, A.WindowFunc):
            return A.WindowFunc(
                A.FuncCall(
                    expr.func.name,
                    tuple(map_expr(a) for a in expr.func.args),
                    expr.func.distinct,
                    expr.func.is_star,
                ),
                tuple(map_expr(p) for p in expr.partition_by),
                tuple(
                    A.SortKey(map_expr(k.expr), k.ascending, k.nulls_first)
                    for k in expr.order_by
                ),
            )
        raise _Unsupported(f"cannot map {type(expr).__name__}")

    try:
        new_items = []
        for item in core.items:
            alias = item.alias
            if alias is None and isinstance(item.expr, A.ColumnRef):
                # keep the user-visible column name across the rewrite
                alias = item.expr.name
            new_items.append(
                A.SelectItem(map_expr(canon.canonical(item.expr)), alias)
            )
        new_items = tuple(new_items)
        new_where = None
        for conjunct in sorted(leftover, key=_render):
            mapped = map_expr(conjunct)
            new_where = mapped if new_where is None else A.BinaryOp("AND", new_where, mapped)
        new_group = tuple(map_expr(canon.resolve(g)) for g in core.group_by
                          if isinstance(g, A.ColumnRef))
        if len(new_group) != len(core.group_by):
            return None
        new_having = None
        if core.having is not None:
            new_having = map_expr(canon.canonical(core.having))
        new_order = tuple(
            A.SortKey(_map_order_expr(k.expr, core, map_expr, canon), k.ascending, k.nulls_first)
            for k in query.order_by
        )
    except _Unsupported:
        return None

    new_core = A.SelectCore(
        items=new_items,
        from_=(A.NamedTable(view.name),),
        where=new_where,
        group_by=new_group,
        having=new_having,
    )
    return A.Query(new_core, (), new_order, query.limit, query.offset)


def _map_order_expr(expr: A.Expr, core: A.SelectCore, map_expr, canon) -> A.Expr:
    """ORDER BY keys may reference select aliases or ordinals — leave those
    untouched; canonical column/aggregate expressions get mapped."""
    if isinstance(expr, A.Literal) and isinstance(expr.value, int):
        return expr
    if isinstance(expr, A.ColumnRef) and expr.table is None:
        aliases = {item.alias for item in core.items if item.alias}
        if expr.name in aliases:
            return expr
    return map_expr(canon.canonical(expr))


def _derive_aggregate(call: A.FuncCall, sig: ViewSignature) -> A.Expr:
    if call.distinct:
        raise _Unsupported("DISTINCT aggregate not derivable")
    name = call.name
    if name == "COUNT" and call.is_star:
        stored = sig.agg_map.get(A.FuncCall("COUNT", (), is_star=True))
        if stored is None:
            raise _Unsupported("view lacks COUNT(*)")
        return A.FuncCall("SUM", (A.ColumnRef(stored),))
    if name in ("SUM", "COUNT"):
        stored = sig.agg_map.get(A.FuncCall(name, call.args))
        if stored is None:
            raise _Unsupported(f"view lacks {name}{call.args}")
        return A.FuncCall("SUM", (A.ColumnRef(stored),))
    if name in ("MIN", "MAX"):
        stored = sig.agg_map.get(A.FuncCall(name, call.args))
        if stored is None:
            raise _Unsupported(f"view lacks {name}{call.args}")
        return A.FuncCall(name, (A.ColumnRef(stored),))
    if name == "AVG":
        sum_col = sig.agg_map.get(A.FuncCall("SUM", call.args))
        cnt_col = sig.agg_map.get(A.FuncCall("COUNT", call.args))
        if sum_col is None or cnt_col is None:
            raise _Unsupported("view lacks SUM/COUNT pair for AVG")
        return A.BinaryOp(
            "/",
            A.FuncCall("SUM", (A.ColumnRef(sum_col),)),
            A.FuncCall("SUM", (A.ColumnRef(cnt_col),)),
        )
    raise _Unsupported(f"aggregate {name} not derivable")
