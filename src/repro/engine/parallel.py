"""Morsel-driven parallel execution: the shared worker pool.

The executor splits its hot operators — scan/filter predicate
evaluation, hash-join probe, Grace-partition processing, partitioned
aggregation, sort-key encoding and external-sort runs — into fixed-size
**morsels** (row ranges or hash partitions) and dispatches them to one
process-wide :class:`WorkerPool`.  The partitioning cut is the same one
the spill machinery uses (a spill partition *is* a morsel), so budgeted
and parallel execution share a single code path in the executor.

Determinism discipline (inherited from dsdgen's parallel generator):
results must be byte-identical to serial execution regardless of worker
count or scheduling.  The pool guarantees the substrate for that:

* :meth:`WorkerPool.map_morsels` returns results in **submission
  order**, whatever order workers finish in; callers concatenate in
  that order, which reproduces the serial loop exactly.
* When morsel tasks fail, the exception of the **lowest-indexed**
  morsel is re-raised — the same error a serial left-to-right loop
  would have surfaced first.
* Nested dispatch runs **inline**: a task submitted from inside a pool
  worker executes serially on that worker.  This makes the pool safe to
  share between the benchmark runner's stream scheduler and the
  executor's morsels (streams × morsels share one pool without
  deadlock: saturated streams simply run their morsels inline).

Resource governance: each morsel task receives a :class:`WorkerContext`
— a per-worker view of the statement's shared
:class:`~repro.engine.governor.ResourceContext` that forwards
cooperative ``check()`` calls (timeout / cancel / fault injection fire
*inside* worker threads) and accounts spill activity both locally (per
worker) and into the shared parent, whose totals are sums across
workers.

Pool gauges land in the metrics registry when it is enabled:
``engine.pool.workers``, ``engine.pool.morsels``,
``engine.pool.inline_morsels`` and ``engine.pool.max_queue_depth``.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Optional, Sequence

from ..obs import get_registry, get_tracer
from ..obs.profile import MorselProfile, get_profiler

#: fixed morsel size for row-range cuts (rows per morsel)
MORSEL_ROWS = 16_384

#: inputs smaller than this stay serial — the dispatch overhead would
#: exceed the work
MIN_PARALLEL_ROWS = 8_192

#: marks threads that belong to a worker pool (nested dispatch from
#: such a thread runs inline instead of deadlocking on its own pool)
_WORKER_LOCAL = threading.local()


def in_worker() -> bool:
    """True when the calling thread is a pool worker."""
    return getattr(_WORKER_LOCAL, "worker_id", None) is not None


def morsel_ranges(n_rows: int, morsel_rows: int = MORSEL_ROWS) -> list[tuple[int, int]]:
    """Fixed-size ``(start, stop)`` row ranges covering ``n_rows``."""
    if n_rows <= 0:
        return []
    return [
        (start, min(start + morsel_rows, n_rows))
        for start in range(0, n_rows, morsel_rows)
    ]


class WorkerContext:
    """One morsel task's view of a shared
    :class:`~repro.engine.governor.ResourceContext`.

    Forwards the cooperative ``check`` (so timeout, cancellation and
    fault injection fire inside worker threads with the same semantics
    as on the main thread) and the budget/spill services, while keeping
    per-worker spill and peak-memory tallies.  Spill accounting is
    **summed** into the shared parent (every byte written is a real
    byte, whichever worker wrote it); peak memory is a per-worker
    **max** — the aggregation semantics tests pin both.
    """

    __slots__ = (
        "parent", "worker_id", "spill_partitions", "spilled_bytes", "peak_bytes"
    )

    def __init__(self, parent, worker_id: int):
        self.parent = parent
        self.worker_id = worker_id
        self.spill_partitions = 0
        self.spilled_bytes = 0
        self.peak_bytes = 0.0

    @property
    def memory_budget_bytes(self):
        return self.parent.memory_budget_bytes if self.parent is not None else None

    def check(self, site: str = "") -> None:
        """Cooperative timeout/cancel/fault point, forwarded to the parent."""
        if self.parent is not None:
            self.parent.check(site)

    def over_budget(self, nbytes: float) -> bool:
        return self.parent is not None and self.parent.over_budget(nbytes)

    def partitions_for(self, nbytes: float) -> int:
        return self.parent.partitions_for(nbytes)

    def spill_path(self) -> str:
        return self.parent.spill_path()

    def note_spill(self, partitions: int, nbytes: int) -> None:
        self.spill_partitions += partitions
        self.spilled_bytes += nbytes
        if self.parent is not None:
            self.parent.note_spill(partitions, nbytes)

    def note_memory(self, nbytes: float) -> None:
        if nbytes > self.peak_bytes:
            self.peak_bytes = nbytes


def worker_index() -> int:
    """The calling pool thread's 0-based worker index (0 off-pool)."""
    return getattr(_WORKER_LOCAL, "worker_index", 0)


class WorkerPool:
    """A shared pool of worker threads executing morsel tasks.

    Thin lifecycle wrapper over :class:`ThreadPoolExecutor` plus the
    morsel-dispatch discipline documented at module level (ordered
    results, lowest-index error, inline nesting).  One pool serves the
    whole process; streams and operator morsels share it.
    """

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._worker_ids = itertools.count()
        self._executor = ThreadPoolExecutor(
            max_workers=workers,
            thread_name_prefix="tpcds-morsel",
            initializer=self._mark_worker,
        )
        self._pending = 0
        self._pending_lock = threading.Lock()
        registry = get_registry()
        if registry.enabled:
            registry.gauge("engine.pool.workers").set(float(workers))

    def _mark_worker(self) -> None:
        """Thread-pool initializer: tag the thread as a pool worker and
        assign its stable 0-based index (the profiler's lane id)."""
        _WORKER_LOCAL.worker_id = threading.get_ident()
        _WORKER_LOCAL.worker_index = next(self._worker_ids)

    # -- dispatch ----------------------------------------------------------

    def submit(self, fn: Callable, *args, **kwargs) -> Future:
        """Schedule one task (the runner's stream scheduler entry).
        From inside a pool worker the task runs inline to keep the
        pool deadlock-free."""
        if in_worker():
            future: Future = Future()
            try:
                future.set_result(fn(*args, **kwargs))
            except BaseException as exc:  # noqa: BLE001 — future carries it
                future.set_exception(exc)
            return future
        profiler = get_profiler()
        if profiler.enabled:
            # stream-level tasks count toward pool occupancy too:
            # in a throughput run the streams saturate the pool and
            # every morsel runs inline, so without this the profiler
            # would see an idle pool doing all the work
            profiler.note_pool(self.workers)
            submit_t = time.perf_counter()

            def stream_task():
                start = time.perf_counter()
                result = fn(*args, **kwargs)
                run_s = time.perf_counter() - start
                profiler.note("stream", worker_index(), time.time() - run_s,
                              max(start - submit_t, 0.0), run_s)
                return result

            return self._executor.submit(stream_task)
        return self._executor.submit(fn, *args, **kwargs)

    def map_morsels(
        self,
        fn: Callable,
        items: Sequence,
        resource=None,
        label: str = "task",
        profile: Optional[MorselProfile] = None,
    ) -> list:
        """Run ``fn(item, ctx)`` for every item; results in item order.

        ``ctx`` is a fresh :class:`WorkerContext` over ``resource`` per
        task (``resource`` may be ``None``).  Raises the exception of
        the lowest-indexed failing morsel, after all tasks settled —
        matching what a serial left-to-right loop would raise first.

        ``label`` names the operator in profiling output; ``profile``
        (a :class:`~repro.obs.profile.MorselProfile`) collects this
        dispatch's per-morsel queue-wait and run times for the caller
        (EXPLAIN ANALYZE's ``skew=`` / ``wait=``).  When the run-wide
        profiler, tracer and registry are all disabled and no profile
        is passed, dispatch is exactly the bare submit loop.
        """
        items = list(items)
        registry = get_registry()
        if not items:
            return []
        if len(items) == 1 or self.workers == 1 or in_worker():
            # inline: nested dispatch, degenerate input, or a 1-pool
            if registry.enabled:
                registry.counter("engine.pool.inline_morsels").add(len(items))
            return [
                fn(item, WorkerContext(resource, 0)) for item in items
            ]
        if registry.enabled:
            registry.counter("engine.pool.morsels").add(len(items))
            with self._pending_lock:
                self._pending += len(items)
                registry.gauge("engine.pool.max_queue_depth").set_max(
                    float(self._pending)
                )
        profiler = get_profiler()
        tracer = get_tracer()
        if profiler.enabled or tracer.enabled or registry.enabled \
                or profile is not None:
            task = self._instrumented(fn, label, profile)
        else:
            task = None
        if profiler.enabled:
            profiler.note_pool(self.workers)
        if task is not None:
            futures = [
                self._executor.submit(
                    task, item, WorkerContext(resource, index),
                    time.perf_counter(), index,
                )
                for index, item in enumerate(items)
            ]
        else:
            futures = [
                self._executor.submit(fn, item, WorkerContext(resource, index))
                for index, item in enumerate(items)
            ]
        results = []
        first_error: Optional[BaseException] = None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                if first_error is None:
                    first_error = exc
                results.append(None)
        if registry.enabled:
            with self._pending_lock:
                self._pending -= len(items)
            if profiler.enabled:
                registry.gauge("engine.pool.occupancy").set(
                    profiler.mean_occupancy()
                )
        if first_error is not None:
            raise first_error
        return results

    def _instrumented(self, fn: Callable, label: str,
                      profile: Optional[MorselProfile]) -> Callable:
        """Wrap ``fn`` to measure queue wait and run time per morsel,
        feeding whichever sinks are live: the run-wide profiler, the
        caller's :class:`MorselProfile`, the tracer (one
        ``morsel:<label>`` span per task) and the registry's
        ``engine.pool.queue_wait`` histogram."""
        profiler = get_profiler()
        tracer = get_tracer()
        registry = get_registry()

        def task(item, ctx, submit_t, index):
            start = time.perf_counter()
            wait_s = max(start - submit_t, 0.0)
            worker = worker_index()
            if tracer.enabled:
                with tracer.span(f"morsel:{label}", worker=worker,
                                 morsel=index):
                    result = fn(item, ctx)
            else:
                result = fn(item, ctx)
            run_s = time.perf_counter() - start
            if profiler.enabled:
                profiler.note(label, worker, time.time() - run_s,
                              wait_s, run_s)
            if profile is not None:
                profile.note(worker, wait_s, run_s)
            if registry.enabled:
                registry.histogram("engine.pool.queue_wait").observe(wait_s)
            return result

        return task

    # -- lifecycle ---------------------------------------------------------

    def shutdown(self) -> None:
        """Stop the workers (idempotent)."""
        self._executor.shutdown(wait=True)


#: the process-wide shared pool (lazily created, grow-only resized)
_POOL: Optional[WorkerPool] = None
_POOL_LOCK = threading.Lock()


def get_pool(workers: Optional[int]) -> Optional[WorkerPool]:
    """The shared pool sized for ``workers``, or ``None`` when morsel
    dispatch is disabled (``workers`` unset or <= 1).

    The pool is process-wide and grow-only: asking for more workers
    than the current pool has replaces it with a larger one; asking for
    fewer reuses the existing pool (capacity is an upper bound — the
    morsel cut, not the pool size, decides the fan-out)."""
    if workers is None or workers <= 1:
        return None
    global _POOL
    with _POOL_LOCK:
        if _POOL is None or _POOL.workers < workers:
            old, _POOL = _POOL, WorkerPool(workers)
            if old is not None:
                old.shutdown()
        registry = get_registry()
        if registry.enabled:
            # refresh on every lookup: the registry may have been
            # swapped (tests, `run --metrics`) since the pool was built
            registry.gauge("engine.pool.workers").set(float(_POOL.workers))
        return _POOL


def shutdown_pool() -> None:
    """Tear down the shared pool (tests and interpreter shutdown)."""
    global _POOL
    with _POOL_LOCK:
        pool, _POOL = _POOL, None
    if pool is not None:
        pool.shutdown()
