"""Per-query resource governance.

A :class:`ResourceContext` carries one query's resource bounds — a
memory budget in bytes, a wall-clock deadline, and a cooperative
cancel flag — plus the spill bookkeeping the executor uses when an
operator's working set would blow the budget.

The executor calls :meth:`ResourceContext.check` at every batch
boundary (operator dispatch, spill-partition loops, long Python row
loops), so timeout and cancellation latency is bounded by one batch of
work.  Memory-hungry operators (hash-join builds, hash aggregates,
sorts) ask :meth:`over_budget` before materializing and, instead of
dying, Grace-partition or run-sort their input through temp files
obtained from :meth:`spill_path`; :meth:`cleanup` removes the whole
spill directory when the statement finishes (success *or* error, so a
timed-out query never leaks temp files).

A context with nothing configured is never constructed — the database
facade passes ``None`` to the executor instead, so ungoverned queries
pay a single ``is None`` check per operator.
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
import threading
import time
from typing import Optional

from .errors import QueryCancelled, QueryTimeout

#: hard cap on spill fan-out; past this an operator proceeds with the
#: smallest partitions it can make rather than recursing forever
MAX_SPILL_PARTITIONS = 64


class ResourceContext:
    """One query's resource bounds plus spill accounting (thread-safe:
    concurrent subquery executors may share one context)."""

    __slots__ = (
        "memory_budget_bytes",
        "deadline",
        "cancel_event",
        "faults",
        "max_partitions",
        "spill_partitions",
        "spilled_bytes",
        "_spill_dir",
        "_spill_seq",
        "_lock",
    )

    def __init__(
        self,
        memory_budget_bytes: Optional[float] = None,
        timeout_s: Optional[float] = None,
        cancel: Optional[threading.Event] = None,
        faults=None,
        max_partitions: int = MAX_SPILL_PARTITIONS,
    ):
        budget = memory_budget_bytes
        if faults is not None:
            budget = faults.apply_memory_pressure(budget)
        self.memory_budget_bytes = budget
        self.deadline = (
            time.monotonic() + timeout_s if timeout_s is not None else None
        )
        self.cancel_event = cancel
        self.faults = faults
        self.max_partitions = max_partitions
        self.spill_partitions = 0
        self.spilled_bytes = 0
        self._spill_dir: Optional[str] = None
        self._spill_seq = 0
        self._lock = threading.Lock()

    # -- cooperative checks --------------------------------------------------

    def check(self, site: str = "") -> None:
        """Raise if the query is cancelled or past its deadline, and
        give the fault injector (if any) its operator-level hook.
        Called at batch boundaries throughout the executor."""
        if self.cancel_event is not None and self.cancel_event.is_set():
            raise QueryCancelled(f"query cancelled at {site or 'operator'}")
        if self.deadline is not None and time.monotonic() >= self.deadline:
            raise QueryTimeout(
                f"query deadline exceeded at {site or 'operator'}"
            )
        if self.faults is not None:
            self.faults.at_operator(site)

    # -- memory budget -------------------------------------------------------

    def over_budget(self, nbytes: float) -> bool:
        """True when ``nbytes`` of transient operator memory exceeds
        the budget (False when no budget is set)."""
        return (
            self.memory_budget_bytes is not None
            and nbytes > self.memory_budget_bytes
        )

    def partitions_for(self, nbytes: float) -> int:
        """Smallest power-of-two partition count bringing a per-
        partition share of ``nbytes`` under budget (capped)."""
        budget = max(float(self.memory_budget_bytes or 1.0), 1.0)
        parts = 2
        while parts < self.max_partitions and nbytes / parts > budget:
            parts *= 2
        return parts

    # -- spill files ---------------------------------------------------------

    def spill_path(self) -> str:
        """A fresh temp-file path inside this query's spill directory
        (created lazily, removed by :meth:`cleanup`)."""
        with self._lock:
            if self._spill_dir is None:
                self._spill_dir = tempfile.mkdtemp(prefix="tpcds-spill-")
            self._spill_seq += 1
            return os.path.join(self._spill_dir, f"part{self._spill_seq}.bin")

    def note_spill(self, partitions: int, nbytes: int) -> None:
        """Account one operator's spill (partition count + bytes written)."""
        with self._lock:
            self.spill_partitions += partitions
            self.spilled_bytes += nbytes

    def cleanup(self) -> None:
        """Remove the spill directory and everything in it."""
        with self._lock:
            spill_dir, self._spill_dir = self._spill_dir, None
        if spill_dir is not None:
            shutil.rmtree(spill_dir, ignore_errors=True)


def write_spill(path: str, arrays: dict) -> int:
    """Serialize a dict of numpy arrays to ``path``; returns bytes
    written.  Pickle (protocol 4) handles object-dtype string columns,
    which ``np.save`` would reject without ``allow_pickle``."""
    with open(path, "wb") as handle:
        pickle.dump(arrays, handle, protocol=4)
    return os.path.getsize(path)


def read_spill(path: str) -> dict:
    """Load a spill file written by :func:`write_spill`."""
    with open(path, "rb") as handle:
        return pickle.load(handle)
