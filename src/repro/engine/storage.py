"""Columnar table storage.

Tables hold one :class:`StoredColumn` per schema column. Numeric columns
store a numpy array plus null mask. String columns are
dictionary-encoded: an ``int32`` code array (-1 encodes NULL) plus the
list of distinct values, which is both compact and gives the optimizer a
free NDV statistic. ``scan`` materializes runtime :class:`Vector` objects.

DML (append / delete / update) operates in place and keeps secondary
indexes registered on the table in sync via an invalidation callback.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

import numpy as np

from .errors import ConstraintError, ExecutionError
from .types import ColumnDef, Kind, TableSchema
from .vector import _NUMPY_DTYPE, Vector


class StoredColumn:
    """One column of a stored table."""

    def __init__(self, definition: ColumnDef):
        self.definition = definition
        self.kind = definition.kind
        if self.kind is Kind.STR:
            self._codes = np.empty(0, dtype=np.int32)
            self._values: list[str] = []
            self._value_ids: dict[str, int] = {}
        else:
            self._data = np.empty(0, dtype=_NUMPY_DTYPE[self.kind])
            self._null = np.empty(0, dtype=bool)

    def __len__(self) -> int:
        if self.kind is Kind.STR:
            return len(self._codes)
        return len(self._data)

    # -- encoding -----------------------------------------------------------

    def _encode(self, value: str) -> int:
        code = self._value_ids.get(value)
        if code is None:
            code = len(self._values)
            self._values.append(value)
            self._value_ids[value] = code
        return code

    def append_values(self, values: Iterable[Any]) -> None:
        values = list(values)
        if self.kind is Kind.STR:
            codes = np.fromiter(
                (-1 if v is None else self._encode(str(v)) for v in values),
                dtype=np.int32,
                count=len(values),
            )
            self._codes = np.concatenate([self._codes, codes])
        else:
            vec = Vector.from_values(self.kind, values)
            self._data = np.concatenate([self._data, vec.data])
            self._null = np.concatenate([self._null, vec.null])

    def append_vector(self, vec: Vector) -> None:
        if vec.kind is not self.kind:
            raise ExecutionError(
                f"cannot append {vec.kind} vector to {self.kind} column "
                f"{self.definition.name}"
            )
        if self.kind is Kind.STR:
            if len(vec):
                # dictionary-encode per distinct value, not per row
                uniq, inverse = np.unique(
                    np.asarray(vec.data, dtype=object).astype(str), return_inverse=True
                )
                uniq_codes = np.fromiter(
                    (self._encode(u) for u in uniq.tolist()),
                    dtype=np.int32,
                    count=len(uniq),
                )
                codes = uniq_codes[inverse]
                codes[np.asarray(vec.null, dtype=bool)] = -1
            else:
                codes = np.empty(0, dtype=np.int32)
            self._codes = np.concatenate([self._codes, codes])
        else:
            self._data = np.concatenate([self._data, vec.data])
            self._null = np.concatenate([self._null, vec.null])

    # -- reads ---------------------------------------------------------------

    def scan(self) -> Vector:
        """Materialize the whole column as a runtime vector."""
        if self.kind is Kind.STR:
            lookup = np.array(self._values + [""], dtype=object)
            data = lookup[self._codes]
            null = self._codes < 0
            return Vector(Kind.STR, data, null)
        return Vector(self.kind, self._data, self._null)

    def value(self, i: int) -> Any:
        if self.kind is Kind.STR:
            code = self._codes[i]
            return None if code < 0 else self._values[code]
        if self._null[i]:
            return None
        v = self._data[i]
        if self.kind in (Kind.INT, Kind.DATE):
            return int(v)
        if self.kind is Kind.FLOAT:
            return float(v)
        return bool(v)

    def has_null_from(self, start: int) -> bool:
        """Whether any row at index >= start is NULL (cheap NOT NULL
        re-check over just-appended rows)."""
        if self.kind is Kind.STR:
            return bool((self._codes[start:] < 0).any())
        return bool(self._null[start:].any())

    def distinct_count(self) -> int:
        """Cheap NDV: exact for dictionary columns, numpy unique otherwise."""
        if self.kind is Kind.STR:
            return len(set(self._codes[self._codes >= 0].tolist()))
        valid = self._data[~self._null]
        return int(len(np.unique(valid)))

    # -- mutation ------------------------------------------------------------

    def keep(self, mask: np.ndarray) -> None:
        """Retain only rows where ``mask`` is True (delete support)."""
        if self.kind is Kind.STR:
            self._codes = self._codes[mask]
        else:
            self._data = self._data[mask]
            self._null = self._null[mask]

    def set_value(self, i: int, value: Any) -> None:
        if self.kind is Kind.STR:
            self._codes[i] = -1 if value is None else self._encode(str(value))
        elif value is None:
            self._null[i] = True
        else:
            self._data[i] = value
            self._null[i] = False


class Table:
    """A stored table: schema + columns + registered index invalidators."""

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self.columns: dict[str, StoredColumn] = {
            c.name: StoredColumn(c) for c in schema.columns
        }
        self._on_mutate: list[Callable[[], None]] = []

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def num_rows(self) -> int:
        first = next(iter(self.columns.values()), None)
        return 0 if first is None else len(first)

    def register_mutation_listener(self, callback: Callable[[], None]) -> None:
        self._on_mutate.append(callback)

    def _mutated(self) -> None:
        for cb in self._on_mutate:
            cb()

    # -- loading ---------------------------------------------------------------

    def append_rows(self, rows: Sequence[Sequence[Any]]) -> None:
        """Append row-major data (used by INSERT VALUES and the loader)."""
        if not rows:
            return
        names = self.schema.column_names
        if any(len(r) != len(names) for r in rows):
            raise ExecutionError(f"row arity mismatch inserting into {self.name}")
        start = self.num_rows
        for idx, name in enumerate(names):
            self.columns[name].append_values([r[idx] for r in rows])
        self._check_not_null(names, start)
        self._mutated()

    def append_columns(self, vectors: dict[str, Vector]) -> None:
        """Append column-major data (used by INSERT ... SELECT)."""
        names = self.schema.column_names
        lengths = {len(v) for v in vectors.values()}
        if len(lengths) > 1:
            raise ExecutionError("ragged column append")
        start = self.num_rows
        for name in names:
            if name not in vectors:
                raise ExecutionError(f"missing column {name} in append to {self.name}")
            self.columns[name].append_vector(vectors[name])
        self._check_not_null(names, start)
        self._mutated()

    def _check_not_null(self, names: Iterable[str], start: int = 0) -> None:
        """NOT NULL constraint over rows appended at index >= start
        (earlier rows were checked by their own append)."""
        for name in names:
            col = self.columns[name]
            if col.definition.nullable:
                continue
            if col.has_null_from(start):
                raise ConstraintError(
                    f"NULL in NOT NULL column {self.name}.{name}"
                )

    # -- reads -------------------------------------------------------------------

    def scan_column(self, name: str) -> Vector:
        return self.columns[name].scan()

    def row(self, i: int) -> dict[str, Any]:
        return {name: col.value(i) for name, col in self.columns.items()}

    # -- mutation ------------------------------------------------------------------

    def delete_where(self, mask: np.ndarray) -> int:
        """Delete rows where ``mask`` is True; returns the number removed."""
        removed = int(mask.sum())
        if removed:
            keep = ~mask
            for col in self.columns.values():
                col.keep(keep)
            self._mutated()
        return removed

    def update_rows(self, row_indices: np.ndarray, assignments: dict[str, list[Any]]) -> int:
        """Set ``assignments[col][k]`` at ``row_indices[k]`` for each column."""
        for name, values in assignments.items():
            col = self.columns[name]
            for k, i in enumerate(row_indices):
                col.set_value(int(i), values[k])
        if len(row_indices):
            self._mutated()
        return len(row_indices)
