"""Columnar table storage.

Tables hold one :class:`StoredColumn` per schema column. Numeric columns
store a numpy array plus null mask. String columns are
dictionary-encoded: an ``int32`` code array (-1 encodes NULL) plus the
list of distinct values, which is both compact and gives the optimizer a
free NDV statistic. ``scan`` materializes runtime :class:`Vector` objects.

A column may instead be *backed* by an on-disk file from the persistent
column store (see :mod:`repro.engine.colstore`): it then holds only the
backing handle until first access, at which point the arrays hydrate
lazily (the numeric data / string codes arrive as read-only memmaps).
``dirty`` tracks divergence from the backing, so an incremental save
rewrites only modified columns and zone maps stay valid exactly while a
column is clean.

DML (append / delete / update) operates in place and keeps secondary
indexes registered on the table in sync via an invalidation callback.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

import numpy as np

from .errors import ConstraintError, ExecutionError
from .types import ColumnDef, Kind, TableSchema
from .vector import _NUMPY_DTYPE, Vector

#: fraction of dictionary entries that may go dead (unreferenced) before
#: ``keep`` triggers an automatic compaction
_COMPACT_DEAD_FRACTION = 0.5

#: the attribute sets hydrated on demand for backed columns
_LAZY_STR_ATTRS = ("_codes", "_values", "_value_ids")
_LAZY_NUM_ATTRS = ("_data", "_null")


class StoredColumn:
    """One column of a stored table (in-memory, or lazily file-backed)."""

    def __init__(self, definition: ColumnDef, backing=None):
        self.definition = definition
        self.kind = definition.kind
        #: on-disk half from the column store, or None for purely
        #: in-memory columns
        self.backing = backing
        #: True when the in-memory state diverges from ``backing`` (a
        #: backing-less column is always "dirty": it has no file yet)
        self.dirty = backing is None
        if backing is None:
            if self.kind is Kind.STR:
                self._codes = np.empty(0, dtype=np.int32)
                self._values: list[str] = []
                self._value_ids: dict[str, int] = {}
            else:
                self._data = np.empty(0, dtype=_NUMPY_DTYPE[self.kind])
                self._null = np.empty(0, dtype=bool)

    # -- lazy hydration ------------------------------------------------------

    def __getattr__(self, name: str):
        # only the lazy array attributes resolve through the backing;
        # everything else is a genuine miss
        lazy = _LAZY_STR_ATTRS if self.__dict__.get("kind") is Kind.STR else _LAZY_NUM_ATTRS
        if name in lazy and self.__dict__.get("backing") is not None:
            self._hydrate()
            return self.__dict__[name]
        raise AttributeError(
            f"{type(self).__name__!s} object has no attribute {name!r}"
        )

    def _hydrate(self) -> None:
        """Decode the backing into the in-memory arrays (first access)."""
        backing = self.backing
        if self.kind is Kind.STR:
            codes, values = backing.load_str()
            self._codes = codes
            self._values = values
            self._value_ids = {v: i for i, v in enumerate(values)}
        else:
            data, null = backing.load_numeric()
            self._data = data
            self._null = null

    @property
    def is_loaded(self) -> bool:
        """Whether the column's arrays are materialized in memory."""
        key = "_codes" if self.kind is Kind.STR else "_data"
        return key in self.__dict__

    def attach_backing(self, backing) -> None:
        """Adopt a freshly written backing: the in-memory state (if any)
        now matches disk, so the column is clean and its zone maps are
        servable."""
        self.backing = backing
        self.dirty = False

    def zone_maps(self):
        """Per-block ``[min, max, null_count]`` zone maps from the disk
        backing — only while the column is unmodified since load/save
        (``None`` otherwise: stale maps must never prune live data)."""
        if self.backing is None or self.dirty:
            return None
        return self.backing.zones()

    def __len__(self) -> int:
        if not self.is_loaded:
            return self.backing.rows
        if self.kind is Kind.STR:
            return len(self._codes)
        return len(self._data)

    # -- encoding -----------------------------------------------------------

    def _encode(self, value: str) -> int:
        code = self._value_ids.get(value)
        if code is None:
            code = len(self._values)
            self._values.append(value)
            self._value_ids[value] = code
        return code

    def append_values(self, values: Iterable[Any]) -> None:
        values = list(values)
        if self.kind is Kind.STR:
            codes = np.fromiter(
                (-1 if v is None else self._encode(str(v)) for v in values),
                dtype=np.int32,
                count=len(values),
            )
            self._codes = np.concatenate([self._codes, codes])
        else:
            vec = Vector.from_values(self.kind, values)
            self._data = np.concatenate([self._data, vec.data])
            self._null = np.concatenate([self._null, vec.null])
        self.dirty = True

    def append_vector(self, vec: Vector) -> None:
        if vec.kind is not self.kind:
            raise ExecutionError(
                f"cannot append {vec.kind} vector to {self.kind} column "
                f"{self.definition.name}"
            )
        if self.kind is Kind.STR:
            if len(vec):
                # dictionary-encode per distinct value, not per row —
                # and only over non-null slots, so the fill values
                # parked under the null mask never enter the dictionary
                null = np.asarray(vec.null, dtype=bool)
                codes = np.full(len(vec), -1, dtype=np.int32)
                valid = ~null
                if valid.any():
                    uniq, inverse = np.unique(
                        np.asarray(vec.data, dtype=object)[valid].astype(str),
                        return_inverse=True,
                    )
                    uniq_codes = np.fromiter(
                        (self._encode(u) for u in uniq.tolist()),
                        dtype=np.int32,
                        count=len(uniq),
                    )
                    codes[valid] = uniq_codes[inverse]
            else:
                codes = np.empty(0, dtype=np.int32)
            self._codes = np.concatenate([self._codes, codes])
        else:
            self._data = np.concatenate([self._data, vec.data])
            self._null = np.concatenate([self._null, vec.null])
        self.dirty = True

    # -- reads ---------------------------------------------------------------

    def scan(self) -> Vector:
        """Materialize the whole column as a runtime vector."""
        if self.kind is Kind.STR:
            lookup = np.array(self._values + [""], dtype=object)
            data = lookup[self._codes]
            null = self._codes < 0
            return Vector(Kind.STR, data, null)
        return Vector(self.kind, self._data, self._null)

    def value(self, i: int) -> Any:
        if self.kind is Kind.STR:
            code = self._codes[i]
            return None if code < 0 else self._values[code]
        if self._null[i]:
            return None
        v = self._data[i]
        if self.kind in (Kind.INT, Kind.DATE):
            return int(v)
        if self.kind is Kind.FLOAT:
            return float(v)
        return bool(v)

    def has_null_from(self, start: int) -> bool:
        """Whether any row at index >= start is NULL (cheap NOT NULL
        re-check over just-appended rows)."""
        if self.kind is Kind.STR:
            return bool((self._codes[start:] < 0).any())
        return bool(self._null[start:].any())

    def distinct_count(self) -> int:
        """Cheap NDV: exact for dictionary columns, numpy unique otherwise."""
        if self.kind is Kind.STR:
            return len(set(self._codes[self._codes >= 0].tolist()))
        valid = self._data[~self._null]
        return int(len(np.unique(valid)))

    # -- mutation ------------------------------------------------------------

    def keep(self, mask: np.ndarray) -> None:
        """Retain only rows where ``mask`` is True (delete support)."""
        if self.kind is Kind.STR:
            self._codes = self._codes[mask]
            n_values = len(self._values)
            if n_values:
                used = np.unique(self._codes[self._codes >= 0])
                if (n_values - len(used)) / n_values > _COMPACT_DEAD_FRACTION:
                    self._compact_with(used)
        else:
            self._data = self._data[mask]
            self._null = self._null[mask]
        self.dirty = True

    def compact_dictionary(self) -> int:
        """Drop dictionary entries no surviving row references,
        remapping the code array; returns the number of entries
        removed.  Scans are identical before and after."""
        if self.kind is not Kind.STR or not self._values:
            return 0
        used = np.unique(self._codes[self._codes >= 0])
        removed = len(self._values) - len(used)
        if removed:
            self._compact_with(used)
            self.dirty = True
        return removed

    def _compact_with(self, used: np.ndarray) -> None:
        """Rebuild the dictionary around the ``used`` code set."""
        remap = np.full(len(self._values), -1, dtype=np.int32)
        remap[used] = np.arange(len(used), dtype=np.int32)
        codes = np.array(self._codes, dtype=np.int32)
        valid = codes >= 0
        codes[valid] = remap[codes[valid]]
        self._codes = codes
        self._values = [self._values[int(i)] for i in used.tolist()]
        self._value_ids = {v: i for i, v in enumerate(self._values)}

    def _writable(self) -> None:
        """Materialize writable copies of memmap-backed arrays before an
        in-place assignment (mmap segments are opened read-only)."""
        if self.kind is Kind.STR:
            if not self._codes.flags.writeable:
                self._codes = np.array(self._codes)
        else:
            if not self._data.flags.writeable:
                self._data = np.array(self._data)
            if not self._null.flags.writeable:
                self._null = np.array(self._null)

    def set_value(self, i: int, value: Any) -> None:
        self._writable()
        if self.kind is Kind.STR:
            self._codes[i] = -1 if value is None else self._encode(str(value))
        elif value is None:
            self._null[i] = True
        else:
            self._data[i] = value
            self._null[i] = False
        self.dirty = True


class Table:
    """A stored table: schema + columns + registered index invalidators."""

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self.columns: dict[str, StoredColumn] = {
            c.name: StoredColumn(c) for c in schema.columns
        }
        self._on_mutate: list[Callable[[], None]] = []

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def num_rows(self) -> int:
        first = next(iter(self.columns.values()), None)
        return 0 if first is None else len(first)

    def register_mutation_listener(self, callback: Callable[[], None]) -> None:
        self._on_mutate.append(callback)

    def _mutated(self) -> None:
        for cb in self._on_mutate:
            cb()

    # -- loading ---------------------------------------------------------------

    def append_rows(self, rows: Sequence[Sequence[Any]]) -> None:
        """Append row-major data (used by INSERT VALUES and the loader)."""
        if not rows:
            return
        names = self.schema.column_names
        if any(len(r) != len(names) for r in rows):
            raise ExecutionError(f"row arity mismatch inserting into {self.name}")
        start = self.num_rows
        for idx, name in enumerate(names):
            self.columns[name].append_values([r[idx] for r in rows])
        self._check_not_null(names, start)
        self._mutated()

    def append_columns(self, vectors: dict[str, Vector]) -> None:
        """Append column-major data (used by INSERT ... SELECT)."""
        names = self.schema.column_names
        lengths = {len(v) for v in vectors.values()}
        if len(lengths) > 1:
            raise ExecutionError("ragged column append")
        start = self.num_rows
        for name in names:
            if name not in vectors:
                raise ExecutionError(f"missing column {name} in append to {self.name}")
            self.columns[name].append_vector(vectors[name])
        self._check_not_null(names, start)
        self._mutated()

    def _check_not_null(self, names: Iterable[str], start: int = 0) -> None:
        """NOT NULL constraint over rows appended at index >= start
        (earlier rows were checked by their own append)."""
        for name in names:
            col = self.columns[name]
            if col.definition.nullable:
                continue
            if col.has_null_from(start):
                raise ConstraintError(
                    f"NULL in NOT NULL column {self.name}.{name}"
                )

    # -- reads -------------------------------------------------------------------

    def scan_column(self, name: str) -> Vector:
        return self.columns[name].scan()

    def row(self, i: int) -> dict[str, Any]:
        return {name: col.value(i) for name, col in self.columns.items()}

    # -- mutation ------------------------------------------------------------------

    def delete_where(self, mask: np.ndarray) -> int:
        """Delete rows where ``mask`` is True; returns the number removed."""
        removed = int(mask.sum())
        if removed:
            keep = ~mask
            for col in self.columns.values():
                col.keep(keep)
            self._mutated()
        return removed

    def update_rows(self, row_indices: np.ndarray, assignments: dict[str, list[Any]]) -> int:
        """Set ``assignments[col][k]`` at ``row_indices[k]`` for each column."""
        for name, values in assignments.items():
            col = self.columns[name]
            for k, i in enumerate(row_indices):
                col.set_value(int(i), values[k])
        if len(row_indices):
            self._mutated()
        return len(row_indices)
