"""Exception hierarchy for the query engine.

Every error raised by the engine derives from :class:`EngineError`, so
callers can catch one type. The subtypes mirror the stage of query
processing that failed, which makes test assertions precise.
"""

from __future__ import annotations


class EngineError(Exception):
    """Base class for all engine errors."""


class SqlSyntaxError(EngineError):
    """The SQL text could not be tokenized or parsed.

    Carries the 1-based line/column of the offending token when known.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = f" at line {line}, column {column}" if line is not None else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class PlanningError(EngineError):
    """The statement parsed but could not be bound to the catalog.

    Examples: unknown table, unknown column, ambiguous column reference,
    aggregate misuse (nested aggregates, aggregate in WHERE).
    """


class ExecutionError(EngineError):
    """A runtime failure while executing a physical plan."""


class ResourceError(EngineError):
    """A query exceeded a resource bound set by its
    :class:`~repro.engine.governor.ResourceContext` (deadline, cancel
    flag, or a memory budget that could not be honored by spilling)."""


class QueryTimeout(ResourceError):
    """The query ran past its deadline; raised cooperatively at the
    next batch boundary after the deadline passes."""


class QueryCancelled(ResourceError):
    """The query's cancel flag was set; raised cooperatively at the
    next batch boundary."""


class MemoryBudgetExceeded(ResourceError):
    """An operator's working set exceeded the memory budget and could
    not be reduced by partitioning/spilling."""


class CatalogError(EngineError):
    """Catalog violation: duplicate table, unknown index, bad DDL."""


class StoreError(EngineError):
    """The persistent column store refused a directory: missing or torn
    manifest, format-version mismatch, schema-fingerprint mismatch, or
    a column file that fails its trailer check."""


class TypeError_(EngineError):
    """Type mismatch in an expression (named with underscore to avoid
    shadowing the builtin)."""


class ConstraintError(EngineError):
    """Primary-key or not-null constraint violation during DML."""
