"""Vectorized expression evaluation.

``evaluate(expr, batch, ctx)`` computes an AST expression over a
:class:`Batch`, returning a :class:`Vector` of the batch's row count.
Aggregates and window functions never reach this module: the planner
rewrites them into column references before projection.

Subqueries are evaluated through the :class:`EvalContext`, which carries
a callback into the executor. Only uncorrelated subqueries are supported
(a documented dialect restriction; the query templates are written
accordingly).
"""

from __future__ import annotations

import datetime as _dt
import re
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Callable, Optional

import numpy as np

from .batch import Batch
from .errors import ExecutionError, PlanningError, TypeError_
from .sql import ast_nodes as A
from .types import Kind, parse_date
from .vector import Vector


@dataclass
class EvalContext:
    """Runtime services available to expression evaluation."""

    #: executes an uncorrelated subquery AST, returning its result batch
    run_subquery: Callable[[A.Query], Batch]
    #: memoized subquery results, keyed by AST node identity
    _subquery_cache: dict[int, Batch] | None = None

    def subquery_batch(self, query: A.Query) -> Batch:
        if self._subquery_cache is None:
            self._subquery_cache = {}
        key = id(query)
        if key not in self._subquery_cache:
            self._subquery_cache[key] = self.run_subquery(query)
        return self._subquery_cache[key]


def literal_kind(value: Any) -> Kind:
    """The storage kind a Python literal value maps to."""
    if isinstance(value, bool):
        return Kind.BOOL
    if isinstance(value, int):
        return Kind.INT
    if isinstance(value, float):
        return Kind.FLOAT
    if isinstance(value, str):
        return Kind.STR
    if value is None:
        return Kind.INT  # placeholder; harmonized at combination points
    raise TypeError_(f"unsupported literal {value!r}")


def harmonize(vectors: list[Vector]) -> list[Vector]:
    """Coerce vectors to a common kind, treating all-null vectors as wild."""
    kinds = {v.kind for v in vectors if not v.null.all()}
    if not kinds:
        return vectors
    if len(kinds) == 1:
        target = kinds.pop()
    elif kinds == {Kind.INT, Kind.FLOAT}:
        target = Kind.FLOAT
    elif kinds == {Kind.INT, Kind.DATE}:
        target = Kind.DATE
    else:
        raise TypeError_(f"cannot harmonize kinds {sorted(k.value for k in kinds)}")
    out = []
    for v in vectors:
        if v.kind is target:
            out.append(v)
        elif v.null.all():
            out.append(Vector.nulls(target, len(v)))
        elif target is Kind.FLOAT:
            out.append(Vector(Kind.FLOAT, v.data.astype(np.float64), v.null))
        elif target is Kind.DATE and v.kind is Kind.INT:
            out.append(Vector(Kind.DATE, v.data, v.null))
        else:
            raise TypeError_(f"cannot coerce {v.kind} to {target}")
    return out


def evaluate(expr: A.Expr, batch: Batch, ctx: EvalContext) -> Vector:
    """Evaluate an expression over a batch, returning a Vector."""
    n = batch.num_rows
    if isinstance(expr, A.Literal):
        value = expr.value
        kind = Kind.DATE if expr.is_date else literal_kind(value)
        return Vector.constant(kind, value, n)
    if isinstance(expr, A.ColumnRef):
        return batch.column(expr.name, expr.table)
    if isinstance(expr, A.BinaryOp):
        return _binary(expr, batch, ctx)
    if isinstance(expr, A.UnaryOp):
        operand = evaluate(expr.operand, batch, ctx)
        if expr.op == "NOT":
            return operand.not_()
        if expr.op == "-":
            return operand.negate()
        raise TypeError_(f"unknown unary op {expr.op!r}")
    if isinstance(expr, A.FuncCall):
        return _scalar_func(expr, batch, ctx)
    if isinstance(expr, A.Case):
        return _case(expr, batch, ctx)
    if isinstance(expr, A.Between):
        target = evaluate(expr.expr, batch, ctx)
        low = evaluate(expr.low, batch, ctx)
        high = evaluate(expr.high, batch, ctx)
        result = target.compare(">=", low).and_(target.compare("<=", high))
        return result.not_() if expr.negated else result
    if isinstance(expr, A.InList):
        return _in_list(expr, batch, ctx)
    if isinstance(expr, A.InSubquery):
        return _in_subquery(expr, batch, ctx)
    if isinstance(expr, A.Exists):
        sub = ctx.subquery_batch(expr.query)
        truth = (sub.num_rows > 0) != expr.negated
        return Vector.constant(Kind.BOOL, truth, n)
    if isinstance(expr, A.ScalarSubquery):
        return _scalar_subquery(expr, batch, ctx)
    if isinstance(expr, A.IsNull):
        operand = evaluate(expr.expr, batch, ctx)
        data = ~operand.null if expr.negated else operand.null.copy()
        return Vector(Kind.BOOL, data, np.zeros(n, dtype=bool))
    if isinstance(expr, A.Like):
        return _like(expr, batch, ctx)
    if isinstance(expr, A.Cast):
        return _cast(expr, batch, ctx)
    if isinstance(expr, A.WindowFunc):
        raise PlanningError("window function in unsupported position")
    raise TypeError_(f"cannot evaluate expression node {type(expr).__name__}")


# -- helpers ------------------------------------------------------------------


def _binary(expr: A.BinaryOp, batch: Batch, ctx: EvalContext) -> Vector:
    op = expr.op
    left = evaluate(expr.left, batch, ctx)
    right = evaluate(expr.right, batch, ctx)
    if op == "AND":
        return left.and_(right)
    if op == "OR":
        return left.or_(right)
    if op in ("=", "<>", "<", "<=", ">", ">="):
        left, right = harmonize([left, right])
        return left.compare(op, right)
    if op in ("+", "-", "*", "/", "||"):
        if op != "||":
            left, right = harmonize([left, right])
        return left.arith(op, right)
    raise TypeError_(f"unknown binary op {op!r}")


def _case(expr: A.Case, batch: Batch, ctx: EvalContext) -> Vector:
    n = batch.num_rows
    branches = [evaluate(result, batch, ctx) for _, result in expr.whens]
    else_vec = (
        evaluate(expr.else_, batch, ctx)
        if expr.else_ is not None
        else Vector.nulls(branches[0].kind, n)
    )
    vectors = harmonize(branches + [else_vec])
    branches, else_vec = vectors[:-1], vectors[-1]
    result = else_vec.copy()
    decided = np.zeros(n, dtype=bool)
    for (cond_expr, _), branch in zip(expr.whens, branches):
        cond = evaluate(cond_expr, batch, ctx).is_true()
        pick = cond & ~decided
        result.data[pick] = branch.data[pick]
        result.null[pick] = branch.null[pick]
        decided |= pick
    return result


def _in_list(expr: A.InList, batch: Batch, ctx: EvalContext) -> Vector:
    target = evaluate(expr.expr, batch, ctx)
    items = [evaluate(item, batch, ctx) for item in expr.items]
    vectors = harmonize([target] + items)
    target, items = vectors[0], vectors[1:]
    found = np.zeros(len(target), dtype=bool)
    any_null_item = np.zeros(len(target), dtype=bool)
    for item in items:
        found |= (target.data == item.data) & ~item.null & ~target.null
        any_null_item |= item.null
    null = (~found & any_null_item) | target.null
    data = ~found if expr.negated else found
    data = data & ~null
    return Vector(Kind.BOOL, data, null)


def _in_subquery(expr: A.InSubquery, batch: Batch, ctx: EvalContext) -> Vector:
    target = evaluate(expr.expr, batch, ctx)
    sub = ctx.subquery_batch(expr.query)
    if len(sub.columns) != 1:
        raise ExecutionError("IN subquery must return exactly one column")
    sub_vec = next(iter(sub.columns.values()))
    sub_vec, target = harmonize([sub_vec, target])
    values = sub_vec.data[~sub_vec.null]
    has_null = bool(sub_vec.null.any())
    if sub_vec.kind is Kind.STR:
        value_set = set(values.tolist())
        found = np.fromiter(
            (v in value_set for v in target.data), dtype=bool, count=len(target)
        )
    else:
        found = np.isin(target.data, values)
    found &= ~target.null
    null = target.null | (~found & has_null)
    data = ~found if expr.negated else found
    data = data & ~null
    return Vector(Kind.BOOL, data, null)


def _scalar_subquery(expr: A.ScalarSubquery, batch: Batch, ctx: EvalContext) -> Vector:
    sub = ctx.subquery_batch(expr.query)
    if len(sub.columns) != 1:
        raise ExecutionError("scalar subquery must return one column")
    if sub.num_rows > 1:
        # >1 rows is a runtime error (SQL standard); 0 rows yields NULL
        raise ExecutionError(f"scalar subquery returned {sub.num_rows} rows")
    vec = next(iter(sub.columns.values()))
    value = vec.value(0) if sub.num_rows == 1 else None
    kind = vec.kind
    return Vector.constant(kind, value, batch.num_rows) if value is not None else (
        Vector.nulls(kind, batch.num_rows)
    )


@lru_cache(maxsize=1024)
def like_to_regex(pattern: str, escape: Optional[str] = None) -> re.Pattern:
    """Compile a SQL LIKE pattern (%/_, optional ESCAPE character) into a
    regular expression. Memoized: the same pattern recurs for every batch
    of a scan, and compilation dominated LIKE cost in EXPLAIN ANALYZE."""
    if escape is not None and len(escape) != 1:
        raise ExecutionError("ESCAPE must be a single character")
    parts = []
    i = 0
    while i < len(pattern):
        ch = pattern[i]
        if escape is not None and ch == escape:
            if i + 1 >= len(pattern):
                raise ExecutionError("LIKE pattern ends with its escape character")
            parts.append(re.escape(pattern[i + 1]))
            i += 2
            continue
        if ch == "%":
            parts.append(".*")
        elif ch == "_":
            parts.append(".")
        else:
            parts.append(re.escape(ch))
        i += 1
    return re.compile("^" + "".join(parts) + "$")


def _like(expr: A.Like, batch: Batch, ctx: EvalContext) -> Vector:
    target = evaluate(expr.expr, batch, ctx)
    if target.kind is not Kind.STR:
        raise TypeError_("LIKE applies to strings")
    regex = like_to_regex(expr.pattern, expr.escape)
    data = np.fromiter(
        (bool(regex.match(v)) for v in target.data), dtype=bool, count=len(target)
    )
    if expr.negated:
        data = ~data
    data = data & ~target.null
    return Vector(Kind.BOOL, data, target.null.copy())


def _to_int64(operand: Vector) -> np.ndarray:
    """Numeric data → int64 with truncation toward zero; null slots are
    masked to 0 first (they may carry NaN/garbage from upstream numpy
    kernels, whose int64 conversion is undefined behavior)."""
    data = operand.data
    if operand.kind is Kind.FLOAT:
        data = np.trunc(np.where(operand.null, 0.0, data))
    return data.astype(np.int64)


def _cast(expr: A.Cast, batch: Batch, ctx: EvalContext) -> Vector:
    operand = evaluate(expr.expr, batch, ctx)
    name = expr.type_name.lower()
    if name in ("int", "integer", "bigint"):
        if operand.kind is Kind.STR:
            # int(float(x)) truncates toward zero, matching the numeric path
            values = [
                None if operand.null[i] else int(float(operand.data[i]))
                for i in range(len(operand))
            ]
            return Vector.from_values(Kind.INT, values)
        return Vector(Kind.INT, _to_int64(operand), operand.null.copy())
    if name in ("float", "double", "real") or name.startswith("decimal") or name.startswith("numeric"):
        if operand.kind is Kind.STR:
            values = [
                None if operand.null[i] else float(operand.data[i])
                for i in range(len(operand))
            ]
            return Vector.from_values(Kind.FLOAT, values)
        return Vector(Kind.FLOAT, operand.data.astype(np.float64), operand.null.copy())
    if name in ("char", "varchar", "text", "string"):
        values = [
            None if operand.null[i] else _to_string(operand, i)
            for i in range(len(operand))
        ]
        return Vector.from_values(Kind.STR, values)
    if name == "date":
        if operand.kind is Kind.STR:
            values = [
                None if operand.null[i] else parse_date(operand.data[i])
                for i in range(len(operand))
            ]
            return Vector.from_values(Kind.DATE, values)
        return Vector(Kind.DATE, _to_int64(operand), operand.null.copy())
    raise TypeError_(f"unsupported cast target {expr.type_name!r}")


def _to_string(vec: Vector, i: int) -> str:
    value = vec.value(i)
    if vec.kind is Kind.DATE:
        from .types import format_date

        return format_date(value)
    return str(value)


def _scalar_func(expr: A.FuncCall, batch: Batch, ctx: EvalContext) -> Vector:
    name = expr.name
    from .sql.parser import AGGREGATE_FUNCS

    if name in AGGREGATE_FUNCS:
        raise PlanningError(f"aggregate {name} used outside GROUP BY context")
    args = [evaluate(a, batch, ctx) for a in expr.args]
    n = batch.num_rows
    if name == "COALESCE":
        vectors = harmonize(args)
        result = vectors[0].copy()
        for vec in vectors[1:]:
            need = result.null & ~vec.null
            result.data[need] = vec.data[need]
            result.null[need] = False
        return result
    if name == "NULLIF":
        a, b = harmonize(args)
        equal = a.compare("=", b).is_true()
        result = a.copy()
        result.null = result.null | equal
        return result
    if name in ("SUBSTR", "SUBSTRING"):
        s, start = args[0], args[1]
        length = args[2] if len(args) > 2 else None
        values = []
        for i in range(n):
            if s.null[i] or start.null[i] or (length is not None and length.null[i]):
                values.append(None)
                continue
            begin = int(start.data[i]) - 1
            if length is None:
                values.append(s.data[i][begin:])
            else:
                values.append(s.data[i][begin:begin + int(length.data[i])])
        return Vector.from_values(Kind.STR, values)
    if name == "UPPER":
        return _map_str(args[0], str.upper)
    if name == "LOWER":
        return _map_str(args[0], str.lower)
    if name == "TRIM":
        return _map_str(args[0], str.strip)
    if name == "LENGTH":
        data = np.fromiter((len(v) for v in args[0].data), dtype=np.int64, count=n)
        return Vector(Kind.INT, data, args[0].null.copy())
    if name == "ABS":
        return Vector(args[0].kind, np.abs(args[0].data), args[0].null.copy())
    if name == "ROUND":
        digits = int(args[1].data[0]) if len(args) > 1 else 0
        data = np.round(args[0].data.astype(np.float64), digits)
        return Vector(Kind.FLOAT, data, args[0].null.copy())
    if name == "FLOOR":
        return Vector(Kind.INT, np.floor(args[0].data).astype(np.int64), args[0].null.copy())
    if name == "CEIL":
        return Vector(Kind.INT, np.ceil(args[0].data).astype(np.int64), args[0].null.copy())
    if name == "MOD":
        a, b = harmonize(args)
        null = a.null | b.null | (b.data == 0)
        safe = np.where(b.data == 0, 1, b.data)
        # fmod: the result takes the sign of the dividend (SQL standard,
        # and what the SQLite differential oracle computes); np.mod would
        # follow the divisor
        return Vector(a.kind, np.fmod(a.data, safe), null)
    if name == "POWER":
        a, b = args
        data = np.power(a.data.astype(np.float64), b.data.astype(np.float64))
        return Vector(Kind.FLOAT, data, a.null | b.null)
    if name == "SQRT":
        v = args[0]
        null = v.null | (v.data < 0)
        data = np.sqrt(np.where(v.data < 0, 0, v.data).astype(np.float64))
        return Vector(Kind.FLOAT, data, null)
    if name in ("LEAST", "GREATEST"):
        vectors = harmonize(args)
        result = vectors[0].copy()
        for vec in vectors[1:]:
            if name == "LEAST":
                pick = (vec.data < result.data) & ~vec.null & ~result.null
            else:
                pick = (vec.data > result.data) & ~vec.null & ~result.null
            result.data[pick] = vec.data[pick]
            result.null = result.null | vec.null
        return result
    if name in ("YEAR", "MONTH", "DAY"):
        v = args[0]
        if v.kind is not Kind.DATE:
            raise TypeError_(f"{name} applies to dates")
        values = []
        for i in range(n):
            if v.null[i]:
                values.append(None)
                continue
            d = _dt.date(1970, 1, 1) + _dt.timedelta(days=int(v.data[i]))
            values.append({"YEAR": d.year, "MONTH": d.month, "DAY": d.day}[name])
        return Vector.from_values(Kind.INT, values)
    raise TypeError_(f"unknown scalar function {name}")


def _map_str(vec: Vector, fn: Callable[[str], str]) -> Vector:
    data = np.array([fn(v) if isinstance(v, str) else "" for v in vec.data], dtype=object)
    return Vector(Kind.STR, data, vec.null.copy())
