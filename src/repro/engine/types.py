"""Logical column types for the engine and the TPC-DS schema.

The engine distinguishes five storage kinds (``int``, ``float``, ``str``,
``date``, ``bool``) but the schema layer declares richer SQL types
(``CHAR(n)``, ``DECIMAL(p, s)``, ``IDENTIFIER`` …) because the paper's
Table 1 reports flat-file row widths, which depend on the declared widths.

Dates are stored as int64 *epoch days* (days since 1970-01-01, proleptic
Gregorian), which makes range predicates and arithmetic vectorizable.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from enum import Enum

EPOCH = _dt.date(1970, 1, 1)


class Kind(str, Enum):
    """Physical storage kind of a column vector."""

    INT = "int"
    FLOAT = "float"
    STR = "str"
    DATE = "date"
    BOOL = "bool"


@dataclass(frozen=True)
class SqlType:
    """A declared SQL type: logical name plus physical kind and width.

    ``width`` is the maximum number of characters the value occupies in the
    generated flat file. It drives the row-length statistics of Table 1.
    """

    name: str
    kind: Kind
    width: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


def identifier() -> SqlType:
    """Surrogate-key type: 64-bit integer, 11 bytes in flat files."""
    return SqlType("identifier", Kind.INT, 11)


def integer() -> SqlType:
    """32/64-bit integer column type."""
    return SqlType("integer", Kind.INT, 11)


def decimal(precision: int = 7, scale: int = 2) -> SqlType:
    """Fixed-point decimal; stored as float64 (documented deviation)."""
    return SqlType(f"decimal({precision},{scale})", Kind.FLOAT, precision + 2)


def char(n: int) -> SqlType:
    """Fixed-width character column type."""
    return SqlType(f"char({n})", Kind.STR, n)


def varchar(n: int) -> SqlType:
    """Variable-width character column type."""
    return SqlType(f"varchar({n})", Kind.STR, n)


def date() -> SqlType:
    """Calendar date column type (stored as epoch days)."""
    return SqlType("date", Kind.DATE, 10)


def time_of_day() -> SqlType:
    """Seconds since midnight, stored as integer."""
    return SqlType("time", Kind.INT, 11)


@dataclass(frozen=True)
class ColumnDef:
    """A column declaration in a table schema."""

    name: str
    sql_type: SqlType
    nullable: bool = True
    primary_key: bool = False
    #: name of the referenced table for foreign keys, None otherwise
    references: str | None = None
    #: True when the column holds the business (OLTP) key of an SCD dimension
    business_key: bool = False

    @property
    def kind(self) -> Kind:
        return self.sql_type.kind

    @property
    def flat_file_width(self) -> int:
        return self.sql_type.width


@dataclass
class TableSchema:
    """A table declaration: name plus ordered column definitions."""

    name: str
    columns: list[ColumnDef] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_name = {c.name: c for c in self.columns}
        if len(self._by_name) != len(self.columns):
            raise ValueError(f"duplicate column names in table {self.name}")

    def column(self, name: str) -> ColumnDef:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"table {self.name} has no column {name!r}") from None

    def has_column(self, name: str) -> bool:
        return name in self._by_name

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    @property
    def primary_key(self) -> list[str]:
        return [c.name for c in self.columns if c.primary_key]

    @property
    def foreign_keys(self) -> list[tuple[str, str]]:
        """``(column_name, referenced_table)`` pairs."""
        return [(c.name, c.references) for c in self.columns if c.references]

    def row_flat_width(self) -> int:
        """Average flat-file row width in bytes: sum of column widths plus
        one pipe separator per column (dsdgen writes ``a|b|c|``)."""
        return sum(c.flat_file_width for c in self.columns) + len(self.columns)


def date_to_epoch_days(value: _dt.date) -> int:
    """Days since 1970-01-01 for a date."""
    return (value - EPOCH).days


def epoch_days_to_date(days: int) -> _dt.date:
    """The date for a days-since-1970 count."""
    return EPOCH + _dt.timedelta(days=int(days))


def parse_date(text: str) -> int:
    """Parse ``YYYY-MM-DD`` into epoch days."""
    return date_to_epoch_days(_dt.date.fromisoformat(text))


def format_date(days: int) -> str:
    """Render epoch days as YYYY-MM-DD."""
    return epoch_days_to_date(days).isoformat()
