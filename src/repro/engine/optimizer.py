"""Rule- and cost-based plan optimization.

Three rewrites, each independently switchable (the ablation benches in
``benchmarks/bench_ablation_access_paths.py`` toggle them):

1. **Predicate pushdown** — WHERE conjuncts sink through joins to the
   side that binds them; single-table conjuncts land in the scan itself.
   Equality conjuncts spanning a cross join convert it into a hash join.
2. **Join reordering** — flattens a connected inner-join tree into a
   relation set plus conjunct pool and rebuilds it greedily from
   statistics: start with the smallest estimated relation and repeatedly
   attach the relation that minimizes the estimated intermediate size
   (foreign-key joins estimate as ``max(left, right)``; cartesian growth
   is penalized). This is where the paper's point about snowflake
   schemas challenging optimizers lives.
3. **Star transformation** — when a large fact scan is equi-joined to
   selective filtered dimensions and a bitmap index exists on the fact
   foreign-key column, insert a :class:`StarFilter` that intersects
   bitmap row sets before the scan feeds the joins (§2.1's "bitmap
   accesses, bitmap merges, bitmap joins").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from . import plan as P
from .planner import and_all, output_names, refs_bound, split_conjuncts
from .sql import ast_nodes as A
from .stats import conjunction_selectivity, estimate_selectivity


@dataclass
class OptimizerSettings:
    enable_pushdown: bool = True
    enable_join_reorder: bool = True
    enable_star_transformation: bool = True
    #: a fact scan qualifies for star transformation above this size
    star_fact_threshold: int = 5_000
    #: a dimension subplan qualifies when its estimated selectivity is below
    star_dim_selectivity: float = 0.5


class Optimizer:
    """Applies pushdown, join reordering and star transformation per its settings."""
    def __init__(self, catalog, settings: OptimizerSettings | None = None):
        self._catalog = catalog
        self.settings = settings or OptimizerSettings()
        #: optimized form of shared (CTE) subtrees, keyed by original id,
        #: so a CTE referenced twice stays one shared object and the
        #: executor's memoization still applies
        self._shared: dict[int, P.PlanNode] = {}

    def optimize(self, node: P.PlanNode) -> P.PlanNode:
        self._shared = {}
        node = self._rewrite(node)
        self.annotate_estimates(node)
        return node

    def annotate_estimates(self, root: P.PlanNode) -> None:
        """Attach ``estimated_rows`` to every node of the optimized
        plan, so EXPLAIN ANALYZE can report the estimate next to the
        measured row count and compute the per-operator Q-error."""
        for node in root.walk():
            node.estimated_rows = self._estimate_rows(node)

    # -- recursive driver ---------------------------------------------------

    def _rewrite(self, node: P.PlanNode) -> P.PlanNode:
        # bottom-up: children first
        if isinstance(node, P.Filter):
            child = self._rewrite(node.child)
            node = P.Filter(child, node.predicate)
            if self.settings.enable_pushdown:
                node = self._push_filter(node)
        elif isinstance(node, P.Join):
            node = P.Join(
                self._rewrite(node.left),
                self._rewrite(node.right),
                node.kind,
                list(node.equi_keys),
                node.residual,
            )
        elif isinstance(node, P.Project):
            node = P.Project(self._rewrite(node.child), node.items)
        elif isinstance(node, P.Aggregate):
            node = P.Aggregate(
                self._rewrite(node.child), node.group_items, node.agg_items, node.rollup
            )
        elif isinstance(node, P.Window):
            node = P.Window(self._rewrite(node.child), node.items)
        elif isinstance(node, P.Sort):
            node = P.Sort(self._rewrite(node.child), node.keys)
        elif isinstance(node, P.Limit):
            node = P.Limit(self._rewrite(node.child), node.limit, node.offset)
        elif isinstance(node, P.Distinct):
            node = P.Distinct(self._rewrite(node.child))
        elif isinstance(node, P.SetOpPlan):
            node = P.SetOpPlan(node.op, self._rewrite(node.left), self._rewrite(node.right))
        elif isinstance(node, P.Rename):
            key = id(node.child)
            if key not in self._shared:
                self._shared[key] = self._rewrite(node.child)
            node = P.Rename(self._shared[key], node.alias, node.column_names)
        if isinstance(node, P.Join):
            node = self._optimize_join_region(node)
        return node

    # -- predicate pushdown ------------------------------------------------------

    def _push_filter(self, node: P.Filter) -> P.PlanNode:
        conjuncts = split_conjuncts(node.predicate)
        child = node.child
        remaining: list[A.Expr] = []
        for conjunct in conjuncts:
            if not self._push_conjunct(child, conjunct):
                remaining.append(conjunct)
        predicate = and_all(remaining)
        return child if predicate is None else P.Filter(child, predicate)

    def _push_conjunct(self, node: P.PlanNode, conjunct: A.Expr) -> bool:
        """Try to sink one conjunct into ``node``; True when absorbed."""
        if isinstance(conjunct, (A.ScalarSubquery, A.Exists)):
            return False
        if _contains_subquery(conjunct):
            # evaluate subquery predicates once, at the top
            return False
        if isinstance(node, P.Scan):
            names = output_names(node, self._catalog)
            if refs_bound(conjunct, names):
                node.pushed_filters.append(conjunct)
                return True
            return False
        if isinstance(node, P.Filter):
            return self._push_conjunct(node.child, conjunct)
        if isinstance(node, P.Join):
            if node.kind in ("inner", "cross"):
                names_l = output_names(node.left, self._catalog)
                names_r = output_names(node.right, self._catalog)
                if refs_bound(conjunct, names_l):
                    if not self._push_conjunct(node.left, conjunct):
                        node.left = P.Filter(node.left, conjunct)
                    return True
                if refs_bound(conjunct, names_r):
                    if not self._push_conjunct(node.right, conjunct):
                        node.right = P.Filter(node.right, conjunct)
                    return True
                pair = _equi_pair_for(conjunct, names_l, names_r)
                if pair is not None:
                    node.equi_keys.append(pair)
                    if node.kind == "cross":
                        node.kind = "inner"
                    return True
                if refs_bound(conjunct, names_l + names_r):
                    node.residual = (
                        conjunct
                        if node.residual is None
                        else A.BinaryOp("AND", node.residual, conjunct)
                    )
                    return True
            elif node.kind == "left":
                # only the probe (left) side may safely absorb filters
                names_l = output_names(node.left, self._catalog)
                if refs_bound(conjunct, names_l):
                    if not self._push_conjunct(node.left, conjunct):
                        node.left = P.Filter(node.left, conjunct)
                    return True
            return False
        return False

    # -- join-region optimization (reorder + star transformation) ------------------

    def _optimize_join_region(self, node: P.Join) -> P.PlanNode:
        if node.kind not in ("inner", "cross"):
            return node
        relations: list[P.PlanNode] = []
        conjuncts: list[A.Expr] = []
        self._flatten(node, relations, conjuncts)
        changed = False
        if self.settings.enable_star_transformation:
            relations, star_applied = self._star_wrap(relations, conjuncts)
            changed = changed or star_applied
        if self.settings.enable_join_reorder and len(relations) > 2:
            return self._greedy_order(relations, conjuncts)
        if changed:
            return self._rebuild_in_order(relations, conjuncts)
        return node

    def _rebuild_in_order(self, relations, conjuncts) -> P.PlanNode:
        """Rebuild a left-deep join tree preserving relation order (used
        when reordering is disabled but the star transformation fired)."""
        names = [output_names(rel, self._catalog) for rel in relations]
        current = relations[0]
        current_names = list(names[0])
        pool = list(conjuncts)
        for rel, rel_names in zip(relations[1:], names[1:]):
            join = P.Join(current, rel, "inner")
            combined = current_names + rel_names
            attached = []
            for conjunct in pool:
                if not refs_bound(conjunct, combined):
                    continue
                pair = _equi_pair_for(conjunct, current_names, rel_names)
                if pair is not None:
                    join.equi_keys.append(pair)
                else:
                    join.residual = (
                        conjunct
                        if join.residual is None
                        else A.BinaryOp("AND", join.residual, conjunct)
                    )
                attached.append(conjunct)
            for conjunct in attached:
                pool.remove(conjunct)
            if not join.equi_keys and join.residual is None:
                join.kind = "cross"
            current = join
            current_names = combined
        leftover = and_all(pool)
        return current if leftover is None else P.Filter(current, leftover)

    def _flatten(self, node: P.PlanNode, relations, conjuncts) -> bool:
        """Collect the maximal inner-join region under ``node``."""
        if isinstance(node, P.Join) and node.kind in ("inner", "cross"):
            ok = self._flatten(node.left, relations, conjuncts)
            ok = ok and self._flatten(node.right, relations, conjuncts)
            for l, r in node.equi_keys:
                conjuncts.append(A.BinaryOp("=", l, r))
            if node.residual is not None:
                conjuncts.extend(split_conjuncts(node.residual))
            return ok
        relations.append(node)
        return True

    def _estimate_rows(self, node: P.PlanNode) -> float:
        if isinstance(node, P.Scan):
            stats = self._catalog.stats(node.table)
            if stats is None:
                base = float(self._catalog.table(node.table).num_rows)
            else:
                base = float(stats.row_count)
            column_stats = stats if stats else None
            if node.pushed_filters:
                # pushed filters are one conjunction: combine with the
                # same exponential backoff the estimator applies to
                # explicit AND-chains
                base *= conjunction_selectivity(
                    [
                        estimate_selectivity(p, column_stats, node.binding)
                        for p in node.pushed_filters
                    ]
                )
            return max(base, 1.0)
        if isinstance(node, P.StarFilter):
            return self._estimate_rows(node.fact) * 0.1
        if isinstance(node, P.MatViewScan):
            return float(self._catalog.matview(node.view).num_rows)
        if isinstance(node, P.Filter):
            return max(self._estimate_rows(node.child) * 0.2, 1.0)
        if isinstance(node, P.Join):
            left = self._estimate_rows(node.left)
            right = self._estimate_rows(node.right)
            if node.equi_keys:
                # classic equi-join estimate: |L| * |R| / max(ndv_l, ndv_r)
                # per key (a PK/FK join collapses to ~|fact|); fall back
                # to the old max(left, right) when NDV is unavailable
                denominator = 1.0
                have_ndv = False
                for lexpr, rexpr in node.equi_keys:
                    ndv_l = self._key_ndv(node.left, lexpr)
                    ndv_r = self._key_ndv(node.right, rexpr)
                    best = max(ndv_l or 0, ndv_r or 0)
                    if best > 0:
                        denominator *= best
                        have_ndv = True
                if have_ndv:
                    return max(left * right / denominator, 1.0)
                return max(left, right)
            return left * right
        if isinstance(node, P.Aggregate):
            return max(self._estimate_rows(node.child) * 0.1, 1.0)
        if isinstance(node, P.Rename):
            return self._estimate_rows(node.child)
        if isinstance(node, (P.Sort, P.Limit, P.Distinct, P.Window, P.Project)):
            return self._estimate_rows(node.children()[0])
        return 1000.0

    def _key_ndv(self, node: P.PlanNode, expr: A.Expr) -> Optional[int]:
        """NDV of a join-key expression, resolved against catalog stats.

        Only a bare column reference can be resolved; the scan that
        binds it is located in ``node``'s subtree (qualified refs match
        the scan binding, unqualified refs must match exactly one scan
        column). Returns None when the key is computed, ambiguous, or
        the table has no gathered statistics."""
        refs = [n for n in A.walk(expr) if isinstance(n, A.ColumnRef)]
        if len(refs) != 1 or not isinstance(expr, A.ColumnRef):
            return None
        ref = refs[0]
        found: Optional[int] = None
        for sub in node.walk():
            if not isinstance(sub, P.Scan):
                continue
            if ref.table is not None and ref.table != sub.binding:
                continue
            if not self._catalog.table(sub.table).schema.has_column(ref.name):
                continue
            stats = self._catalog.stats(sub.table)
            column = stats.columns.get(ref.name) if stats else None
            ndv = column.ndv if column else None
            if ref.table is not None:
                return ndv
            if found is not None:
                return None  # unqualified ref matches several scans
            found = ndv
        return found

    def _greedy_order(self, relations: list[P.PlanNode], conjuncts: list[A.Expr]) -> P.PlanNode:
        names = {id(rel): output_names(rel, self._catalog) for rel in relations}
        sizes = {id(rel): self._estimate_rows(rel) for rel in relations}
        remaining = list(relations)
        pool = list(conjuncts)

        # seed with the smallest relation that participates in a join
        current = min(remaining, key=lambda r: sizes[id(r)])
        remaining.remove(current)
        current_names = list(names[id(current)])
        current_size = sizes[id(current)]

        while remaining:
            best = None
            best_size = None
            for candidate in remaining:
                cand_names = current_names + names[id(candidate)]
                join_keys = [
                    c
                    for c in pool
                    if _joins_across(c, current_names, names[id(candidate)])
                ]
                if join_keys:
                    est = max(current_size, sizes[id(candidate)])
                else:
                    est = current_size * sizes[id(candidate)]
                if best is None or est < best_size:
                    best = candidate
                    best_size = est
            remaining.remove(best)
            join = P.Join(
                _as_node(current), best, "inner"
            )
            # attach every conjunct now bound by the combined output
            combined = current_names + names[id(best)]
            attached: list[A.Expr] = []
            for conjunct in pool:
                if not refs_bound(conjunct, combined):
                    continue
                pair = _equi_pair_for(conjunct, current_names, names[id(best)])
                if pair is not None:
                    join.equi_keys.append(pair)
                else:
                    join.residual = (
                        conjunct
                        if join.residual is None
                        else A.BinaryOp("AND", join.residual, conjunct)
                    )
                attached.append(conjunct)
            for conjunct in attached:
                pool.remove(conjunct)
            if not join.equi_keys and join.residual is None:
                join.kind = "cross"
            current = join
            current_names = combined
            current_size = best_size
        leftover = and_all(pool)
        result: P.PlanNode = current
        if leftover is not None:
            result = P.Filter(result, leftover)
        return result

    # -- star transformation ----------------------------------------------------------

    def _star_wrap(self, relations: list[P.PlanNode], conjuncts: list[A.Expr]):
        """Wrap qualifying fact scans in :class:`StarFilter` nodes.

        A fact scan qualifies when it is large, the join key has a bitmap
        index, and the dimension side of the key is selectively filtered.
        The dimension *plan node object* is shared between the StarFilter
        and the join that still performs the actual join, so the executor
        evaluates it once.
        """
        applied = False
        out: list[P.PlanNode] = []
        rel_names = {id(rel): output_names(rel, self._catalog) for rel in relations}
        for rel in relations:
            if not isinstance(rel, P.Scan):
                out.append(rel)
                continue
            stats = self._catalog.stats(rel.table)
            fact_rows = (
                stats.row_count if stats else self._catalog.table(rel.table).num_rows
            )
            if fact_rows < self.settings.star_fact_threshold:
                out.append(rel)
                continue
            dims = []
            for conjunct in conjuncts:
                if not (
                    isinstance(conjunct, A.BinaryOp)
                    and conjunct.op == "="
                    and isinstance(conjunct.left, A.ColumnRef)
                    and isinstance(conjunct.right, A.ColumnRef)
                ):
                    continue
                for fact_key, dim_key in (
                    (conjunct.left, conjunct.right),
                    (conjunct.right, conjunct.left),
                ):
                    if not refs_bound(fact_key, rel_names[id(rel)]):
                        continue
                    if self._catalog.index(rel.table, fact_key.name, "bitmap") is None:
                        continue
                    for other in relations:
                        if other is rel:
                            continue
                        if not refs_bound(dim_key, rel_names[id(other)]):
                            continue
                        if self._dim_is_selective(other):
                            dims.append((other, fact_key.name, dim_key))
                        break
                    break
            if dims:
                out.append(P.StarFilter(rel, dims))
                applied = True
            else:
                out.append(rel)
        return out, applied

    def _dim_is_selective(self, node: P.PlanNode) -> bool:
        if isinstance(node, P.Scan) and node.pushed_filters:
            stats = self._catalog.stats(node.table)
            base = stats.row_count if stats else self._catalog.table(node.table).num_rows
            if base == 0:
                return False
            est = self._estimate_rows(node)
            return est / base <= self.settings.star_dim_selectivity
        if isinstance(node, P.Filter):
            return True
        return False


def _contains_subquery(expr: A.Expr) -> bool:
    return any(
        isinstance(n, (A.InSubquery, A.Exists, A.ScalarSubquery))
        for n in A.walk(expr)
    )


def _equi_pair_for(conjunct: A.Expr, names_l, names_r):
    if not (isinstance(conjunct, A.BinaryOp) and conjunct.op == "="):
        return None
    a, b = conjunct.left, conjunct.right
    if _contains_subquery(a) or _contains_subquery(b):
        return None
    a_refs = any(isinstance(n, A.ColumnRef) for n in A.walk(a))
    b_refs = any(isinstance(n, A.ColumnRef) for n in A.walk(b))
    if not (a_refs and b_refs):
        return None
    if refs_bound(a, names_l) and refs_bound(b, names_r):
        return (a, b)
    if refs_bound(a, names_r) and refs_bound(b, names_l):
        return (b, a)
    return None


def _joins_across(conjunct: A.Expr, names_l, names_r) -> bool:
    return _equi_pair_for(conjunct, names_l, names_r) is not None


def _as_node(node: P.PlanNode) -> P.PlanNode:
    return node
