"""Persistent compressed columnar storage with zone-map pruning.

A database directory holds one subdirectory per table with one
``<column>.col`` file per column, plus a ``manifest.json`` describing
the schema, row counts, optimizer statistics and format version::

    store/
      manifest.json
      store_sales/
        ss_sold_date_sk.col
        ss_quantity.col
        ...

Each column file is ``payload + footer JSON + uint32 footer length +
magic trailer``.  Numeric kinds (INT / FLOAT / DATE / BOOL) store the
raw little-endian numpy array followed by a packed null bitmap
(``np.packbits``); the data segment is memory-mappable, so opening a
store costs O(columns touched) — nothing is decoded until a scan needs
it.  STR columns store the ``int32`` dictionary codes (``-1`` = NULL)
followed by the dictionary as a JSON array, reusing
:class:`~repro.engine.storage.StoredColumn`'s encoding unchanged.

The footer carries per-block *zone maps* — ``[min, max, null_count]``
over each run of ``block_rows`` rows — which the executor consults
against pushed filter predicates to skip blocks that cannot match
(reported as ``blocks_skipped=`` in EXPLAIN ANALYZE).

Writes are crash-safe: every file goes to ``<name>.tmp`` + fsync +
``os.replace``, the manifest is written last, and the directory is
fsynced; a torn or absent manifest makes :func:`open_database` raise
:class:`~repro.engine.errors.StoreError` rather than serve a partial
store.  ``save`` on an already-opened store rewrites only dirty
columns.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
from typing import Any, Callable, Optional

import numpy as np

from .errors import StoreError
from .sql import ast_nodes as A
from .stats import ColumnStats, TableStats
from .storage import StoredColumn, Table
from .types import ColumnDef, Kind, SqlType, TableSchema

FORMAT_NAME = "repro-colstore"
FORMAT_VERSION = 1
MAGIC = b"RPC1"
MANIFEST = "manifest.json"
#: default zone-map granularity (rows per block)
BLOCK_ROWS = 65536

#: on-disk dtypes for the memory-mapped numeric kinds
_DTYPES = {
    Kind.INT: "<i8",
    Kind.DATE: "<i8",
    Kind.FLOAT: "<f8",
    Kind.BOOL: "|b1",
}
_CODES_DTYPE = "<i4"


# -- storage fault injection -------------------------------------------------


def _storage_check(site: str) -> None:
    """Roll the process-wide storage-fault injector at one I/O site.

    The import is lazy on purpose: ``repro.faults`` imports the engine
    package, so a module-level import here would cycle."""
    from ..faults import get_storage_faults

    injector = get_storage_faults()
    if injector is not None:
        injector.at_storage(site)


def _store_io_error(message: str, exc: BaseException) -> StoreError:
    """Translate an I/O failure into :class:`StoreError`, keeping the
    retry-eligibility (``transient``) of injected faults."""
    error = StoreError(message)
    if getattr(exc, "transient", False):
        error.transient = True
    return error


# -- fsync discipline --------------------------------------------------------


def _fsync_dir(path: str) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _atomic_write(path: str, payload: bytes) -> None:
    """Write ``payload`` to ``path`` via tmp + fsync + atomic rename;
    :class:`StoreError` on any I/O failure."""
    tmp = path + ".tmp"
    try:
        _storage_check(f"write:{os.path.basename(path)}")
        with open(tmp, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError as exc:
        raise _store_io_error(f"cannot write {path}: {exc}", exc) from None


# -- schema fingerprint ------------------------------------------------------


def _column_dict(column: ColumnDef) -> dict:
    return {
        "name": column.name,
        "type": {
            "name": column.sql_type.name,
            "kind": column.sql_type.kind.value,
            "width": column.sql_type.width,
        },
        "nullable": column.nullable,
        "primary_key": column.primary_key,
        "references": column.references,
        "business_key": column.business_key,
    }


def _column_from_dict(entry: dict) -> ColumnDef:
    spec = entry["type"]
    return ColumnDef(
        name=entry["name"],
        sql_type=SqlType(spec["name"], Kind(spec["kind"]), spec["width"]),
        nullable=entry["nullable"],
        primary_key=entry["primary_key"],
        references=entry["references"],
        business_key=entry["business_key"],
    )


def schema_fingerprint(schemas: dict[str, TableSchema]) -> str:
    """A stable digest of every table's full column declarations."""
    doc = {
        name: [_column_dict(c) for c in schema.columns]
        for name, schema in sorted(schemas.items())
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# -- column files ------------------------------------------------------------


def _zone_entry(values, nulls: int) -> list:
    """One zone-map triple ``[min, max, null_count]``; all-null blocks
    record ``[None, None, n]``."""
    if len(values) == 0:
        return [None, None, nulls]
    if isinstance(values, np.ndarray) and values.dtype != object:
        lo, hi = values.min(), values.max()
        if values.dtype == np.bool_:
            return [bool(lo), bool(hi), nulls]
        return [lo.item(), hi.item(), nulls]
    return [min(values), max(values), nulls]


def _encode_column(column: StoredColumn, block_rows: int) -> bytes:
    """Serialize one column to its file bytes (payload + footer +
    trailer)."""
    rows = len(column)
    zones: list[list] = []
    segments: dict[str, list[int]] = {}
    parts: list[bytes] = []
    offset = 0

    def add_segment(name: str, blob: bytes) -> None:
        nonlocal offset
        segments[name] = [offset, len(blob)]
        parts.append(blob)
        offset += len(blob)

    if column.kind is Kind.STR:
        codes = np.ascontiguousarray(column._codes, dtype=_CODES_DTYPE)
        lookup = np.array(column._values + [""], dtype=object)
        for start in range(0, rows, block_rows):
            block = codes[start : start + block_rows]
            valid = block[block >= 0]
            zones.append(
                _zone_entry(lookup[valid], int(len(block) - len(valid)))
            )
        add_segment("data", codes.tobytes())
        dict_blob = json.dumps(
            column._values, ensure_ascii=False, separators=(",", ":")
        ).encode("utf-8")
        add_segment("dict", dict_blob)
    else:
        data = np.ascontiguousarray(column._data, dtype=_DTYPES[column.kind])
        null = np.asarray(column._null, dtype=bool)
        for start in range(0, rows, block_rows):
            block = data[start : start + block_rows]
            block_null = null[start : start + block_rows]
            zones.append(_zone_entry(block[~block_null], int(block_null.sum())))
        add_segment("data", data.tobytes())
        add_segment("null", np.packbits(null).tobytes())

    footer = {
        "kind": column.kind.value,
        "rows": rows,
        "block_rows": block_rows,
        "segments": segments,
        "zones": zones,
    }
    footer_blob = json.dumps(footer, separators=(",", ":")).encode("utf-8")
    trailer = struct.pack("<I", len(footer_blob)) + MAGIC
    return b"".join(parts) + footer_blob + trailer


def _read_footer(path: str) -> dict:
    """Parse and validate a column file's footer; raises
    :class:`StoreError` on a torn or foreign file."""
    try:
        _storage_check(f"footer:{os.path.basename(path)}")
        with open(path, "rb") as handle:
            handle.seek(0, os.SEEK_END)
            size = handle.tell()
            if size < 8:
                raise StoreError(f"column file {path} is truncated")
            handle.seek(size - 8)
            trailer = handle.read(8)
            (footer_len,) = struct.unpack("<I", trailer[:4])
            if trailer[4:] != MAGIC:
                raise StoreError(f"column file {path} has a bad trailer")
            if footer_len > size - 8:
                raise StoreError(f"column file {path} is truncated")
            handle.seek(size - 8 - footer_len)
            footer = json.loads(handle.read(footer_len).decode("utf-8"))
    except OSError as exc:
        raise _store_io_error(
            f"cannot read column file {path}: {exc}", exc
        ) from None
    except (ValueError, struct.error) as exc:
        raise StoreError(f"column file {path} has a corrupt footer: {exc}") from None
    return footer


class ColumnBacking:
    """The on-disk half of a lazily materialized
    :class:`~repro.engine.storage.StoredColumn`.

    Holds only the path, kind and row count until first use; the footer
    (zone maps, segment offsets) is read on demand, and the data
    segment is memory-mapped rather than copied."""

    def __init__(self, path: str, kind: Kind, rows: int):
        self.path = path
        self.kind = kind
        self.rows = rows
        self._footer: Optional[dict] = None

    def footer(self) -> dict:
        if self._footer is None:
            footer = _read_footer(self.path)
            if footer["kind"] != self.kind.value or footer["rows"] != self.rows:
                raise StoreError(
                    f"column file {self.path} does not match the manifest "
                    f"(kind {footer['kind']!r} rows {footer['rows']} vs "
                    f"{self.kind.value!r} / {self.rows})"
                )
            self._footer = footer
        return self._footer

    @property
    def block_rows(self) -> int:
        return self.footer()["block_rows"]

    def zones(self) -> list[list]:
        return self.footer()["zones"]

    def _segment_map(self, name: str, dtype: str) -> np.ndarray:
        offset, _length = self.footer()["segments"][name]
        try:
            _storage_check(f"read:{os.path.basename(self.path)}:{name}")
            return np.memmap(
                self.path, dtype=dtype, mode="r", offset=offset,
                shape=(self.rows,),
            )
        except OSError as exc:
            raise _store_io_error(
                f"cannot map segment {name!r} of {self.path}: {exc}", exc
            ) from None

    def _segment_bytes(self, name: str) -> bytes:
        offset, length = self.footer()["segments"][name]
        try:
            _storage_check(f"read:{os.path.basename(self.path)}:{name}")
            with open(self.path, "rb") as handle:
                handle.seek(offset)
                return handle.read(length)
        except OSError as exc:
            raise _store_io_error(
                f"cannot read segment {name!r} of {self.path}: {exc}", exc
            ) from None

    def load_numeric(self) -> tuple[np.ndarray, np.ndarray]:
        """The (data, null) pair for an INT/FLOAT/DATE/BOOL column;
        ``data`` is a read-only memmap, ``null`` a fresh bool array."""
        if self.rows == 0:
            return (
                np.empty(0, dtype=_DTYPES[self.kind]),
                np.empty(0, dtype=bool),
            )
        data = self._segment_map("data", _DTYPES[self.kind])
        packed = np.frombuffer(self._segment_bytes("null"), dtype=np.uint8)
        null = np.unpackbits(packed, count=self.rows).astype(bool)
        return data, null

    def load_str(self) -> tuple[np.ndarray, list[str]]:
        """The (codes, dictionary) pair for a STR column; ``codes`` is
        a read-only memmap."""
        if self.rows == 0:
            codes = np.empty(0, dtype=np.int32)
        else:
            codes = self._segment_map("data", _CODES_DTYPE)
        values = json.loads(self._segment_bytes("dict").decode("utf-8"))
        return codes, values


# -- save --------------------------------------------------------------------


def _stats_dict(stats: TableStats) -> dict:
    return {
        "row_count": stats.row_count,
        "columns": {
            name: {
                "ndv": cs.ndv,
                "null_fraction": cs.null_fraction,
                "min": cs.min_value,
                "max": cs.max_value,
            }
            for name, cs in stats.columns.items()
        },
    }


def _stats_from_dict(entry: dict) -> TableStats:
    stats = TableStats(row_count=entry["row_count"])
    for name, cs in entry["columns"].items():
        stats.columns[name] = ColumnStats(
            ndv=cs["ndv"],
            null_fraction=cs["null_fraction"],
            min_value=cs["min"],
            max_value=cs["max"],
        )
    return stats


def save_database(
    db,
    path: str,
    block_rows: Optional[int] = None,
    scale_factor: Optional[float] = None,
    seed: Optional[int] = None,
) -> dict:
    """Persist every base table of ``db`` under ``path``.

    When ``db`` was opened from (or last saved to) the same directory,
    only dirty columns are rewritten — clean columns keep their files.
    STR columns being written get their dictionaries compacted first,
    so deletes never persist dead entries.  Returns the manifest dict.
    """
    path = os.path.abspath(path)
    try:
        os.makedirs(path, exist_ok=True)
    except OSError as exc:
        raise _store_io_error(
            f"cannot create store directory {path}: {exc}", exc
        ) from None
    incremental = getattr(db, "_store_path", None) == path
    previous = db.store_info if incremental else None
    if block_rows is None:
        block_rows = (previous or {}).get("block_rows", BLOCK_ROWS)
    if scale_factor is None and previous is not None:
        scale_factor = previous.get("scale_factor")
    if seed is None and previous is not None:
        seed = previous.get("seed")

    schemas = {
        name: db.catalog.table(name).schema for name in db.catalog.table_names
    }
    tables_doc: dict[str, dict] = {}
    written = 0
    for name in db.catalog.table_names:
        table = db.catalog.table(name)
        table_dir = os.path.join(path, name)
        try:
            os.makedirs(table_dir, exist_ok=True)
        except OSError as exc:
            raise _store_io_error(
                f"cannot create table directory {table_dir}: {exc}", exc
            ) from None
        columns_doc = []
        for cdef in table.schema.columns:
            column = table.columns[cdef.name]
            file_name = f"{cdef.name}.col"
            file_path = os.path.join(table_dir, file_name)
            reusable = (
                incremental
                and not column.dirty
                and isinstance(column.backing, ColumnBacking)
                and column.backing.path == file_path
                and os.path.exists(file_path)
            )
            if not reusable:
                if cdef.kind is Kind.STR:
                    column.compact_dictionary()
                _atomic_write(file_path, _encode_column(column, block_rows))
                column.attach_backing(
                    ColumnBacking(file_path, cdef.kind, len(column))
                )
                written += 1
            entry = _column_dict(cdef)
            entry["file"] = file_name
            columns_doc.append(entry)
        stats = db.catalog.stats(name)
        tables_doc[name] = {
            "rows": table.num_rows,
            "columns": columns_doc,
            "stats": _stats_dict(stats) if stats is not None else None,
        }
        _fsync_dir(table_dir)

    manifest = {
        "format": FORMAT_NAME,
        "format_version": FORMAT_VERSION,
        "block_rows": block_rows,
        "scale_factor": scale_factor,
        "seed": seed,
        "schema_fingerprint": schema_fingerprint(schemas),
        "tables": tables_doc,
    }
    _atomic_write(
        os.path.join(path, MANIFEST),
        json.dumps(manifest, indent=1, sort_keys=True).encode("utf-8"),
    )
    _fsync_dir(path)
    db._store_path = path
    db.store_info = {
        "path": path,
        "format_version": FORMAT_VERSION,
        "block_rows": block_rows,
        "scale_factor": scale_factor,
        "seed": seed,
        "columns_written": written,
        "tables": {name: doc["rows"] for name, doc in tables_doc.items()},
    }
    return manifest


# -- open --------------------------------------------------------------------


def read_manifest(path: str) -> dict:
    """Load and validate ``path``'s manifest; :class:`StoreError` on a
    missing, torn or incompatible store."""
    manifest_path = os.path.join(os.path.abspath(path), MANIFEST)
    if not os.path.exists(manifest_path):
        raise StoreError(f"no column store at {path} (missing {MANIFEST})")
    try:
        _storage_check("manifest")
        with open(manifest_path, encoding="utf-8") as handle:
            manifest = json.load(handle)
    except OSError as exc:
        raise _store_io_error(
            f"cannot read manifest at {manifest_path}: {exc}", exc
        ) from None
    except ValueError as exc:
        raise StoreError(f"torn manifest at {manifest_path}: {exc}") from None
    if manifest.get("format") != FORMAT_NAME:
        raise StoreError(f"{manifest_path} is not a {FORMAT_NAME} manifest")
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise StoreError(
            f"store format version {version} at {path} is not supported "
            f"(this build reads version {FORMAT_VERSION})"
        )
    return manifest


def open_database(db, path: str) -> dict:
    """Attach the store at ``path`` to a fresh :class:`Database`.

    Creates every table with mmap-backed columns (nothing decoded yet)
    and installs the persisted optimizer statistics, so the first query
    pays only for the columns it touches.  Returns the manifest.
    """
    path = os.path.abspath(path)
    manifest = read_manifest(path)
    schemas: dict[str, TableSchema] = {}
    backings: dict[str, list[tuple[ColumnDef, ColumnBacking]]] = {}
    for name, doc in manifest["tables"].items():
        columns = [_column_from_dict(entry) for entry in doc["columns"]]
        schemas[name] = TableSchema(name, columns)
        rows = doc["rows"]
        per_table = []
        for cdef, entry in zip(columns, doc["columns"]):
            file_path = os.path.join(path, name, entry["file"])
            if not os.path.exists(file_path):
                raise StoreError(f"store at {path} is missing {file_path}")
            per_table.append((cdef, ColumnBacking(file_path, cdef.kind, rows)))
        backings[name] = per_table
    fingerprint = schema_fingerprint(schemas)
    if fingerprint != manifest["schema_fingerprint"]:
        raise StoreError(
            f"schema fingerprint mismatch at {path}: manifest says "
            f"{manifest['schema_fingerprint'][:12]}…, tables hash to "
            f"{fingerprint[:12]}…"
        )
    stats: dict[str, TableStats] = {}
    for name in sorted(manifest["tables"]):
        table = db.create_table(schemas[name])
        for cdef, backing in backings[name]:
            table.columns[cdef.name] = StoredColumn(cdef, backing=backing)
        doc = manifest["tables"][name]
        if doc.get("stats") is not None:
            stats[name] = _stats_from_dict(doc["stats"])
    db.catalog.install_stats(stats)
    db._store_path = path
    db.store_info = {
        "path": path,
        "format_version": manifest["format_version"],
        "block_rows": manifest["block_rows"],
        "scale_factor": manifest.get("scale_factor"),
        "seed": manifest.get("seed"),
        "tables": {
            name: doc["rows"] for name, doc in manifest["tables"].items()
        },
    }
    return manifest


# -- zone-map pruning --------------------------------------------------------

_FLIP_OP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>"}


def _literal_ok(value: Any, kind: Kind) -> bool:
    """Whether a literal is zone-comparable against a column kind."""
    if kind in (Kind.INT, Kind.FLOAT, Kind.DATE):
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if kind is Kind.STR:
        return isinstance(value, str)
    return False


def _binary_test(op: str, lit: Any) -> Callable:
    def test(mn, mx, nulls, size) -> bool:
        if nulls == size or mn is None:
            return True  # all NULL: a value comparison is never TRUE
        if op == "=":
            return lit < mn or lit > mx
        if op == "<":
            return mn >= lit
        if op == "<=":
            return mn > lit
        if op == ">":
            return mx <= lit
        if op == ">=":
            return mx < lit
        # op == "<>": only skippable when the whole block equals lit
        return mn == mx == lit

    return test


def _between_test(low: Any, high: Any) -> Callable:
    def test(mn, mx, nulls, size) -> bool:
        if nulls == size or mn is None:
            return True
        return mx < low or mn > high

    return test


def _in_test(items: list) -> Callable:
    def test(mn, mx, nulls, size) -> bool:
        if nulls == size or mn is None:
            return True
        return not any(mn <= item <= mx for item in items)

    return test


def _null_test(negated: bool) -> Callable:
    def test(mn, mx, nulls, size) -> bool:
        # IS NULL skips null-free blocks; IS NOT NULL skips all-null ones
        return nulls == size if negated else nulls == 0

    return test


def _prune_spec(pred: A.Expr) -> Optional[tuple[str, list, Callable]]:
    """``(column, literals, block_test)`` for a predicate shape the
    zone maps can decide, else ``None`` (the block is kept)."""
    if isinstance(pred, A.BinaryOp) and pred.op in _FLIP_OP:
        left, right, op = pred.left, pred.right, pred.op
        if isinstance(left, A.Literal) and isinstance(right, A.ColumnRef):
            left, right, op = right, left, _FLIP_OP[op]
        if isinstance(left, A.ColumnRef) and isinstance(right, A.Literal):
            return left.name, [right.value], _binary_test(op, right.value)
        return None
    if isinstance(pred, A.Between) and not pred.negated:
        if (
            isinstance(pred.expr, A.ColumnRef)
            and isinstance(pred.low, A.Literal)
            and isinstance(pred.high, A.Literal)
        ):
            lo, hi = pred.low.value, pred.high.value
            return pred.expr.name, [lo, hi], _between_test(lo, hi)
        return None
    if isinstance(pred, A.InList) and not pred.negated:
        if isinstance(pred.expr, A.ColumnRef) and all(
            isinstance(item, A.Literal) for item in pred.items
        ):
            values = [item.value for item in pred.items]
            return pred.expr.name, values, _in_test(values)
        return None
    if isinstance(pred, A.IsNull) and isinstance(pred.expr, A.ColumnRef):
        return pred.expr.name, [], _null_test(pred.negated)
    return None


def prune_scan(
    table: Table, predicates: list[A.Expr]
) -> tuple[Optional[np.ndarray], int, int]:
    """Zone-map pruning for one scan: ``(kept_rows, blocks, skipped)``.

    ``kept_rows`` is the sorted row-index array surviving every
    prunable conjunct, or ``None`` when nothing could be skipped (or no
    column had valid zone maps).  ``blocks`` / ``skipped`` count the
    table's blocks under the first consulted column's layout.
    """
    num_rows = table.num_rows
    if num_rows == 0 or not predicates:
        return None, 0, 0
    keep: Optional[np.ndarray] = None
    layout: Optional[tuple[int, int]] = None
    for pred in predicates:
        spec = _prune_spec(pred)
        if spec is None:
            continue
        name, literals, test = spec
        column = table.columns.get(name)
        if column is None:
            continue
        zones = column.zone_maps()
        if not zones:
            continue
        kind = column.kind
        if any(not _literal_ok(value, kind) for value in literals):
            continue
        block_rows = column.backing.block_rows
        if layout is None:
            layout = (block_rows, len(zones))
        for b, (mn, mx, nulls) in enumerate(zones):
            start = b * block_rows
            end = min(start + block_rows, num_rows)
            if test(mn, mx, nulls, end - start):
                if keep is None:
                    keep = np.ones(num_rows, dtype=bool)
                keep[start:end] = False
    if layout is None:
        return None, 0, 0
    block_rows, n_blocks = layout
    if keep is None or keep.all():
        return None, n_blocks, 0
    skipped = 0
    for b in range(n_blocks):
        start = b * block_rows
        end = min(start + block_rows, num_rows)
        if not keep[start:end].any():
            skipped += 1
    return np.flatnonzero(keep), n_blocks, skipped
