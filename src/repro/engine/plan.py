"""Logical query plans.

The planner lowers a SQL AST into a tree of these nodes; the optimizer
rewrites the tree (predicate pushdown, join ordering, star transformation,
materialized-view rewrite); the executor interprets it.

Column naming convention: a :class:`Scan` with binding ``b`` over table
columns ``c1..cn`` outputs columns named ``b.c1 .. b.cn``. Computed
columns (projections, aggregates, windows) are output under their bare
alias. Expression resolution accepts either an exact key or a unique
``*.name`` suffix match.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .sql import ast_nodes as A


class PlanNode:
    """Base class of logical plan nodes."""

    #: optimizer cardinality estimate, attached by
    #: :meth:`Optimizer.optimize` so EXPLAIN ANALYZE can compute the
    #: per-operator Q-error (kept a plain class attribute, not a
    #: dataclass field, so subclass constructors are unaffected)
    estimated_rows = None

    def children(self) -> tuple["PlanNode", ...]:
        return ()

    def label(self) -> str:
        return type(self).__name__

    def explain(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.label()]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def walk(self):
        """Yield this node and every descendant, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass
class Scan(PlanNode):
    table: str
    binding: str
    #: predicate pushed down to the scan by the optimizer (conjuncts)
    pushed_filters: list[A.Expr] = field(default_factory=list)

    def label(self) -> str:
        extra = ""
        if self.pushed_filters:
            extra += f" filters={len(self.pushed_filters)}"
        return f"Scan({self.table} as {self.binding}){extra}"


@dataclass
class MatViewScan(PlanNode):
    """Scan of a materialized view selected by query rewrite."""

    view: str
    binding: str

    def label(self) -> str:
        return f"MatViewScan({self.view} as {self.binding})"


@dataclass
class StarFilter(PlanNode):
    """Star transformation: reduce a fact scan by intersecting bitmap-index
    row sets derived from filtered dimension subplans, before any join runs.

    Each entry of ``dims`` is ``(dim_plan, fact_column, dim_key_ref)``:
    the dimension subplan is executed first (its result is memoized, so
    the actual join above reuses it), and the distinct values of the
    referenced dimension key column become the allowed key set for the
    fact scan's ``fact_column``.
    """

    fact: "Scan"
    dims: list = field(default_factory=list)

    def children(self):
        return (self.fact,) + tuple(d for d, _, _ in self.dims)

    def label(self) -> str:
        keys = ", ".join(f"{fc}" for _, fc, _ in self.dims)
        return f"StarFilter({keys})"


@dataclass
class Filter(PlanNode):
    child: PlanNode
    predicate: A.Expr

    def children(self):
        return (self.child,)


@dataclass
class Project(PlanNode):
    child: PlanNode
    items: list[tuple[A.Expr, str]]  # (expression, output name)

    def children(self):
        return (self.child,)

    def label(self) -> str:
        return f"Project({', '.join(name for _, name in self.items)})"


@dataclass
class Join(PlanNode):
    left: PlanNode
    right: PlanNode
    kind: str  # inner, left, right, full, cross
    #: equi-join key pairs (left expr, right expr)
    equi_keys: list[tuple[A.Expr, A.Expr]] = field(default_factory=list)
    #: non-equi residual predicate evaluated on joined rows
    residual: Optional[A.Expr] = None

    def children(self):
        return (self.left, self.right)

    def label(self) -> str:
        algo = "HashJoin" if self.equi_keys else "NestedLoopJoin"
        return f"{algo}[{self.kind}] keys={len(self.equi_keys)}"


@dataclass
class Aggregate(PlanNode):
    child: PlanNode
    group_items: list[tuple[A.Expr, str]]  # evaluated pre-aggregation
    agg_items: list[tuple[A.FuncCall, str]]
    rollup: bool = False

    def children(self):
        return (self.child,)

    def label(self) -> str:
        kind = "Rollup" if self.rollup else "HashAggregate"
        return (
            f"{kind}(groups={len(self.group_items)}, aggs={len(self.agg_items)})"
        )


@dataclass
class Window(PlanNode):
    child: PlanNode
    items: list[tuple[A.WindowFunc, str]]

    def children(self):
        return (self.child,)


@dataclass
class Sort(PlanNode):
    child: PlanNode
    keys: list[A.SortKey]

    def children(self):
        return (self.child,)

    def label(self) -> str:
        return f"Sort(keys={len(self.keys)})"


@dataclass
class Limit(PlanNode):
    child: PlanNode
    limit: Optional[int]
    offset: int = 0

    def children(self):
        return (self.child,)

    def label(self) -> str:
        return f"Limit({self.limit} offset {self.offset})"


@dataclass
class Distinct(PlanNode):
    child: PlanNode

    def children(self):
        return (self.child,)


@dataclass
class SetOpPlan(PlanNode):
    op: str  # union, union_all, intersect, except
    left: PlanNode
    right: PlanNode

    def children(self):
        return (self.left, self.right)

    def label(self) -> str:
        return f"SetOp({self.op})"


@dataclass
class OneRow(PlanNode):
    """A single anonymous row, the FROM-less SELECT source."""


@dataclass
class Rename(PlanNode):
    """Rebind a subplan's output columns under a new alias
    (derived tables and CTE references)."""

    child: PlanNode
    alias: str
    column_names: list[str]

    def children(self):
        return (self.child,)

    def label(self) -> str:
        return f"Rename(as {self.alias})"
