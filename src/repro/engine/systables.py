"""The ``sys.*`` system tables: engine internals queryable via SQL.

:func:`install_sys_tables` registers seven read-only virtual tables on
a database's catalog; each materializes live state at scan time:

============== =========================================================
table          backing state
============== =========================================================
sys.statements the installed :class:`~repro.obs.statements
               .StatementStore` — per-fingerprint aggregates
sys.queries    the store's in-process statement log (status, latency,
               governor outcome)
sys.operators  per-operator exec stats of the last profiled statement
sys.metrics    the process metrics-registry snapshot
sys.tables     catalog tables with live row counts
sys.columns    per-column type + optimizer stats (NDV, null fraction)
sys.pool       worker occupancy / queue wait from the PoolProfiler
============== =========================================================

Because the catalog resolves them like base tables, the whole dialect
works over them — joins against ``sys.tables``, ORDER BY over
``sys.statements``, aggregation, CTEs.  Scans that touch a ``sys.``
table are never recorded into the statement store
(:func:`statement_touches_sys` is the recursion guard), so
introspection cannot pollute the data it reads.
"""

from __future__ import annotations

from typing import Optional

from ..obs import get_profiler, get_registry, q_error
from .sql import ast_nodes as A
from .types import ColumnDef, Kind, SqlType, TableSchema, varchar
from .virtual import VirtualTableProvider

#: the reserved schema prefix for system tables
SYS_PREFIX = "sys."


def _float_type() -> SqlType:
    return SqlType("double", Kind.FLOAT, 18)


def _int_type() -> SqlType:
    return SqlType("bigint", Kind.INT, 20)


def _schema(name: str, columns: list[tuple[str, SqlType]]) -> TableSchema:
    return TableSchema(
        name=name,
        columns=[ColumnDef(cname, ctype) for cname, ctype in columns],
    )


_F, _I, _S = _float_type, _int_type, varchar


def install_sys_tables(db) -> None:
    """Register every ``sys.*`` provider on ``db``'s catalog.

    Providers close over ``db`` and the global registry/profiler
    accessors, so a statement store installed *after* this call (or a
    registry enabled mid-session) is picked up on the next scan."""
    catalog = db.catalog

    def statements_rows() -> list[tuple]:
        store = db.statement_store
        if store is None:
            return []
        return [
            (
                s.fingerprint, s.query, s.calls, s.errors,
                s.total_elapsed, s.mean_elapsed, s.min_elapsed,
                s.max_elapsed, s.rows, float(s.peak_memory_bytes),
                s.spill_partitions, s.spilled_bytes, s.retries,
                s.max_workers, s.worst_q_error or None,
            )
            for s in store.statements()
        ]

    catalog.register_virtual(VirtualTableProvider(
        "sys.statements",
        _schema("sys.statements", [
            ("fingerprint", _S(16)), ("query", _S(4000)), ("calls", _I()),
            ("errors", _I()), ("total_elapsed", _F()), ("mean_elapsed", _F()),
            ("min_elapsed", _F()), ("max_elapsed", _F()), ("rows", _I()),
            ("peak_memory_bytes", _F()), ("spill_partitions", _I()),
            ("spilled_bytes", _I()), ("retries", _I()), ("max_workers", _I()),
            ("worst_q_error", _F()),
        ]),
        statements_rows,
    ))

    def queries_rows() -> list[tuple]:
        store = db.statement_store
        if store is None:
            return []
        return [
            (
                entry["ts"], entry["fingerprint"], entry["query"],
                entry["status"], entry["elapsed"], entry["rows"],
                entry["spill_partitions"], entry["spilled_bytes"],
                entry["workers"], entry["error"] or None,
            )
            for entry in store.recent()
        ]

    catalog.register_virtual(VirtualTableProvider(
        "sys.queries",
        _schema("sys.queries", [
            ("ts", _F()), ("fingerprint", _S(16)), ("query", _S(500)),
            ("status", _S(16)), ("elapsed", _F()), ("rows", _I()),
            ("spill_partitions", _I()), ("spilled_bytes", _I()),
            ("workers", _I()), ("error", _S(500)),
        ]),
        queries_rows,
    ))

    def operators_rows() -> list[tuple]:
        profiled = getattr(db, "last_profiled", None)
        if profiled is None:
            return []
        plan, collector = profiled
        rows: list[tuple] = []

        def visit(node, depth: int) -> None:
            stats = collector.stats_for(node)
            est = node.estimated_rows
            q_err = None
            if stats is not None and est is not None:
                q_err = q_error(est, stats.rows_out)
            rows.append((
                len(rows), depth, node.label(),
                stats.rows_out if stats is not None else None,
                stats.elapsed if stats is not None else None,
                stats.invocations if stats is not None else 0,
                float(est) if est is not None else None,
                q_err,
                float(stats.extra.get("mem_bytes", 0.0)) if stats is not None else 0.0,
            ))
            for child in node.children():
                visit(child, depth + 1)

        visit(plan, 0)
        return rows

    catalog.register_virtual(VirtualTableProvider(
        "sys.operators",
        _schema("sys.operators", [
            ("op_id", _I()), ("depth", _I()), ("operator", _S(200)),
            ("rows", _I()), ("elapsed", _F()), ("invocations", _I()),
            ("estimated_rows", _F()), ("q_error", _F()), ("mem_bytes", _F()),
        ]),
        operators_rows,
    ))

    def metrics_rows() -> list[tuple]:
        registry = get_registry()
        if not registry.enabled:
            return []
        rows = []
        for name, inst in registry.snapshot().items():
            kind = inst.get("type", "")
            rows.append((
                name, kind, inst.get("value"), inst.get("count"),
                inst.get("sum"), inst.get("mean"), inst.get("p50"),
                inst.get("p95"), inst.get("p99"),
            ))
        return rows

    catalog.register_virtual(VirtualTableProvider(
        "sys.metrics",
        _schema("sys.metrics", [
            ("name", _S(200)), ("type", _S(16)), ("value", _F()),
            ("count", _I()), ("sum", _F()), ("mean", _F()),
            ("p50", _F()), ("p95", _F()), ("p99", _F()),
        ]),
        metrics_rows,
    ))

    def tables_rows() -> list[tuple]:
        rows = []
        for name in catalog.table_names:
            table = catalog.table(name)
            stats = catalog.stats(name)
            indexes = sum(1 for key in catalog.index_keys if key[0] == name)
            rows.append((
                name, table.num_rows, len(table.schema.columns),
                indexes, stats is not None,
            ))
        return rows

    catalog.register_virtual(VirtualTableProvider(
        "sys.tables",
        _schema("sys.tables", [
            ("name", _S(100)), ("rows", _I()), ("columns", _I()),
            ("indexes", _I()), ("analyzed", _bool_type()),
        ]),
        tables_rows,
    ))

    def columns_rows() -> list[tuple]:
        rows = []
        for name in catalog.table_names:
            table = catalog.table(name)
            stats = catalog.stats(name)
            for column in table.schema.columns:
                cstats = stats.columns.get(column.name) if stats else None
                rows.append((
                    name, column.name, column.sql_type.name,
                    cstats.ndv if cstats else None,
                    cstats.null_fraction if cstats else None,
                    _render(cstats.min_value) if cstats else None,
                    _render(cstats.max_value) if cstats else None,
                ))
        return rows

    catalog.register_virtual(VirtualTableProvider(
        "sys.columns",
        _schema("sys.columns", [
            ("table_name", _S(100)), ("column_name", _S(100)),
            ("type", _S(32)), ("ndv", _I()), ("null_fraction", _F()),
            ("min_value", _S(100)), ("max_value", _S(100)),
        ]),
        columns_rows,
    ))

    def pool_rows() -> list[tuple]:
        profiler = get_profiler()
        if not getattr(profiler, "enabled", False):
            return []
        records = list(profiler.records)
        occupancy = profiler.worker_occupancy()
        waits: dict[int, float] = {}
        for _, worker, _, wait_s, _ in records:
            waits[worker] = waits.get(worker, 0.0) + wait_s
        return [
            (
                worker, slot["morsels"], slot["busy_s"],
                slot["occupancy"], waits.get(worker, 0.0),
            )
            for worker, slot in sorted(occupancy.items())
        ]

    catalog.register_virtual(VirtualTableProvider(
        "sys.pool",
        _schema("sys.pool", [
            ("worker", _I()), ("morsels", _I()), ("busy_s", _F()),
            ("occupancy", _F()), ("wait_s", _F()),
        ]),
        pool_rows,
    ))


def _bool_type() -> SqlType:
    return SqlType("boolean", Kind.BOOL, 5)


def _render(value) -> Optional[str]:
    return None if value is None else str(value)


# -- the recursion guard ------------------------------------------------------


def statement_touches_sys(statement: A.Statement) -> bool:
    """True when any table reference anywhere in the statement (CTEs,
    derived tables, expression subqueries included) names a ``sys.``
    table — such statements are introspection and must never be
    recorded into the statement store they read."""
    return any(
        name.startswith(SYS_PREFIX) for name in _statement_tables(statement)
    )


def _statement_tables(statement: A.Statement):
    if isinstance(statement, A.Query):
        yield from _query_tables(statement)
    elif isinstance(statement, A.Insert):
        yield statement.table
        if statement.query is not None:
            yield from _query_tables(statement.query)
        for row in statement.rows:
            for expr in row:
                yield from _expr_tables(expr)
    elif isinstance(statement, (A.Delete, A.Update)):
        yield statement.table
        if statement.where is not None:
            yield from _expr_tables(statement.where)
        if isinstance(statement, A.Update):
            for _, expr in statement.assignments:
                yield from _expr_tables(expr)


def _query_tables(query: A.Query):
    for cte in query.ctes:
        yield from _query_tables(cte.query)
    yield from _body_tables(query.body)
    for key in query.order_by:
        yield from _expr_tables(key.expr)


def _body_tables(body):
    if isinstance(body, A.SetOp):
        yield from _body_tables(body.left)
        yield from _body_tables(body.right)
        return
    for item in body.items:
        yield from _expr_tables(item.expr)
    for ref in body.from_:
        yield from _table_ref_tables(ref)
    for expr in (body.where, body.having):
        if expr is not None:
            yield from _expr_tables(expr)
    for expr in body.group_by:
        yield from _expr_tables(expr)


def _table_ref_tables(ref: A.TableRef):
    if isinstance(ref, A.NamedTable):
        yield ref.name
    elif isinstance(ref, A.DerivedTable):
        yield from _query_tables(ref.query)
    elif isinstance(ref, A.JoinRef):
        yield from _table_ref_tables(ref.left)
        yield from _table_ref_tables(ref.right)
        if ref.on is not None:
            yield from _expr_tables(ref.on)


def _expr_tables(expr: A.Expr):
    for node in A.walk(expr):
        if isinstance(node, (A.InSubquery, A.Exists, A.ScalarSubquery)):
            yield from _query_tables(node.query)
