"""Lowering of SQL ASTs into logical plans.

The planner binds table and column references against the catalog,
decomposes joins, rewrites aggregates and window functions into column
references over :class:`Aggregate` / :class:`Window` nodes, and resolves
GROUP BY / ORDER BY aliases and ordinals.
"""

from __future__ import annotations

from typing import Optional

from . import plan as P
from .errors import PlanningError
from .sql import ast_nodes as A
from .sql.parser import AGGREGATE_FUNCS


def output_names(node: P.PlanNode, catalog) -> list[str]:
    """The ordered output column names a plan node produces."""
    if isinstance(node, P.Scan):
        schema = catalog.table(node.table).schema
        return [f"{node.binding}.{c}" for c in schema.column_names]
    if isinstance(node, P.MatViewScan):
        view = catalog.matview(node.view)
        return [f"{node.binding}.{c}" for c in view.column_names]
    if isinstance(node, P.OneRow):
        return []
    if isinstance(node, P.StarFilter):
        return output_names(node.fact, catalog)
    if isinstance(node, P.Project):
        return [name for _, name in node.items]
    if isinstance(node, P.Join):
        return output_names(node.left, catalog) + output_names(node.right, catalog)
    if isinstance(node, P.Aggregate):
        return [n for _, n in node.group_items] + [n for _, n in node.agg_items]
    if isinstance(node, P.Window):
        return output_names(node.child, catalog) + [n for _, n in node.items]
    if isinstance(node, P.SetOpPlan):
        return output_names(node.left, catalog)
    if isinstance(node, P.Rename):
        return [
            f"{node.alias}.{name.rsplit('.', 1)[-1]}" for name in node.column_names
        ]
    if isinstance(node, (P.Filter, P.Sort, P.Limit, P.Distinct)):
        return output_names(node.child, catalog)
    raise PlanningError(f"unknown plan node {type(node).__name__}")


def _resolvable(name: str, table: Optional[str], names: list[str]) -> bool:
    if table is not None:
        return f"{table}.{name}" in names
    if name in names:
        return True
    suffix = "." + name
    return sum(1 for n in names if n.endswith(suffix)) == 1


def refs_bound(expr: A.Expr, names: list[str]) -> bool:
    """True when every column reference in ``expr`` resolves in ``names``."""
    return all(
        _resolvable(node.name, node.table, names)
        for node in A.walk(expr)
        if isinstance(node, A.ColumnRef)
    )


def _replace(expr: A.Expr, mapping: dict[A.Expr, A.Expr]) -> A.Expr:
    """Structurally replace sub-expressions (top-down, aggregate-aware)."""
    if expr in mapping:
        return mapping[expr]
    if isinstance(expr, A.BinaryOp):
        return A.BinaryOp(expr.op, _replace(expr.left, mapping), _replace(expr.right, mapping))
    if isinstance(expr, A.UnaryOp):
        return A.UnaryOp(expr.op, _replace(expr.operand, mapping))
    if isinstance(expr, A.FuncCall):
        return A.FuncCall(
            expr.name,
            tuple(_replace(a, mapping) for a in expr.args),
            expr.distinct,
            expr.is_star,
        )
    if isinstance(expr, A.Case):
        return A.Case(
            tuple(
                (_replace(c, mapping), _replace(r, mapping)) for c, r in expr.whens
            ),
            None if expr.else_ is None else _replace(expr.else_, mapping),
        )
    if isinstance(expr, A.Between):
        return A.Between(
            _replace(expr.expr, mapping),
            _replace(expr.low, mapping),
            _replace(expr.high, mapping),
            expr.negated,
        )
    if isinstance(expr, A.InList):
        return A.InList(
            _replace(expr.expr, mapping),
            tuple(_replace(i, mapping) for i in expr.items),
            expr.negated,
        )
    if isinstance(expr, A.InSubquery):
        return A.InSubquery(_replace(expr.expr, mapping), expr.query, expr.negated)
    if isinstance(expr, A.IsNull):
        return A.IsNull(_replace(expr.expr, mapping), expr.negated)
    if isinstance(expr, A.Like):
        return A.Like(_replace(expr.expr, mapping), expr.pattern, expr.negated)
    if isinstance(expr, A.Cast):
        return A.Cast(_replace(expr.expr, mapping), expr.type_name)
    if isinstance(expr, A.WindowFunc):
        return A.WindowFunc(
            A.FuncCall(
                expr.func.name,
                tuple(_replace(a, mapping) for a in expr.func.args),
                expr.func.distinct,
                expr.func.is_star,
            ),
            tuple(_replace(p, mapping) for p in expr.partition_by),
            tuple(
                A.SortKey(_replace(k.expr, mapping), k.ascending, k.nulls_first)
                for k in expr.order_by
            ),
        )
    return expr


def _collect_aggregates(expr: A.Expr) -> list[A.FuncCall]:
    """All plain aggregate calls in ``expr`` (window wrappers excluded by walk)."""
    return [
        node
        for node in A.walk(expr)
        if isinstance(node, A.FuncCall) and node.name in AGGREGATE_FUNCS
    ]


def _collect_windows(expr: A.Expr) -> list[A.WindowFunc]:
    return [node for node in A.walk(expr) if isinstance(node, A.WindowFunc)]


class Planner:
    """Plans statements against a catalog."""

    def __init__(self, catalog):
        self._catalog = catalog
        #: expression subqueries planned in their enclosing CTE scope,
        #: keyed by the identity of the subquery AST node; the executor's
        #: run_subquery callback consults this before planning from scratch
        self.subquery_plans: dict[int, P.PlanNode] = {}

    # -- public -----------------------------------------------------------

    def plan_query(self, query: A.Query, ctes: dict[str, P.PlanNode] | None = None) -> P.PlanNode:
        cte_env: dict[str, P.PlanNode] = dict(ctes or {})
        for cte in query.ctes:
            cte_env[cte.name] = self.plan_query(cte.query, cte_env)
        node, mapping = self._plan_body(query.body, cte_env)
        if query.order_by:
            keys = tuple(
                A.SortKey(_replace(k.expr, mapping), k.ascending, k.nulls_first)
                for k in query.order_by
            )
            node = self._plan_order_by(node, keys)
        if query.limit is not None or query.offset:
            node = P.Limit(node, query.limit, query.offset)
        return node

    def _register_subqueries(self, expr: A.Expr | None, cte_env) -> None:
        """Plan every expression subquery under the current CTE scope."""
        if expr is None:
            return
        for node in A.walk(expr):
            query = None
            if isinstance(node, (A.InSubquery, A.Exists)):
                query = node.query
            elif isinstance(node, A.ScalarSubquery):
                query = node.query
            if query is not None and id(query) not in self.subquery_plans:
                self.subquery_plans[id(query)] = self.plan_query(query, cte_env)

    # -- body -------------------------------------------------------------------

    def _plan_body(self, body, cte_env: dict[str, P.PlanNode]):
        """Returns (plan, mapping) where mapping rewrites aggregate/window
        expressions to their computed output columns (used by ORDER BY)."""
        if isinstance(body, A.SetOp):
            left, _ = self._plan_body(body.left, cte_env)
            right, _ = self._plan_body(body.right, cte_env)
            names_l = output_names(left, self._catalog)
            names_r = output_names(right, self._catalog)
            if len(names_l) != len(names_r):
                raise PlanningError("set operation arity mismatch")
            return P.SetOpPlan(body.op, left, right), {}
        return self._plan_select(body, cte_env)

    # -- FROM ---------------------------------------------------------------------

    def _plan_table_ref(self, ref: A.TableRef, cte_env) -> P.PlanNode:
        if isinstance(ref, A.NamedTable):
            binding = ref.binding
            if ref.name in cte_env:
                child = cte_env[ref.name]
                return P.Rename(child, binding, output_names(child, self._catalog))
            if self._catalog.has_matview(ref.name):
                return P.MatViewScan(ref.name, binding)
            self._catalog.table(ref.name)  # raises CatalogError when missing
            return P.Scan(ref.name, binding)
        if isinstance(ref, A.DerivedTable):
            child = self.plan_query(ref.query, cte_env)
            return P.Rename(child, ref.alias, output_names(child, self._catalog))
        if isinstance(ref, A.JoinRef):
            left = self._plan_table_ref(ref.left, cte_env)
            right = self._plan_table_ref(ref.right, cte_env)
            join = P.Join(left, right, ref.kind)
            if ref.on is not None:
                self._register_subqueries(ref.on, cte_env)
                self._split_join_condition(join, ref.on)
            return join
        raise PlanningError(f"unknown table ref {type(ref).__name__}")

    def _split_join_condition(self, join: P.Join, condition: A.Expr) -> None:
        names_l = output_names(join.left, self._catalog)
        names_r = output_names(join.right, self._catalog)
        residual: list[A.Expr] = []
        for conjunct in split_conjuncts(condition):
            pair = _equi_pair(conjunct, names_l, names_r)
            if pair is not None:
                join.equi_keys.append(pair)
            else:
                residual.append(conjunct)
        join.residual = and_all(residual)

    # -- SELECT core --------------------------------------------------------------

    def _plan_select(self, core: A.SelectCore, cte_env) -> P.PlanNode:
        # FROM
        if core.from_:
            node = self._plan_table_ref(core.from_[0], cte_env)
            for ref in core.from_[1:]:
                node = P.Join(node, self._plan_table_ref(ref, cte_env), "cross")
        else:
            node = P.OneRow()
        child_names = output_names(node, self._catalog)

        # subqueries in any clause are planned in the current CTE scope
        self._register_subqueries(core.where, cte_env)
        self._register_subqueries(core.having, cte_env)
        for item in core.items:
            if not isinstance(item.expr, A.Star):
                self._register_subqueries(item.expr, cte_env)

        # WHERE
        if core.where is not None:
            node = P.Filter(node, core.where)

        # expand stars and name the select items
        items: list[tuple[A.Expr, Optional[str]]] = []
        for item in core.items:
            if isinstance(item.expr, A.Star):
                prefix = item.expr.table
                for name in child_names:
                    binding, _, base = name.rpartition(".")
                    if prefix is not None and binding != prefix:
                        continue
                    items.append((A.ColumnRef(base, binding or None), base))
            else:
                items.append((item.expr, item.alias))
        named_items: list[tuple[A.Expr, str]] = []
        used: set[str] = set()
        for i, (expr, alias) in enumerate(items):
            name = alias
            if name is None:
                name = expr.name if isinstance(expr, A.ColumnRef) else f"_col{i}"
            while name in used:
                name = name + "_"
            used.add(name)
            named_items.append((expr, name))
        alias_map = {name: expr for expr, name in named_items}

        # aggregate detection
        has_agg = bool(core.group_by) or any(
            A.contains_aggregate(e) for e, _ in named_items
        )
        if core.having is not None and A.contains_aggregate(core.having):
            has_agg = True

        select_exprs = [e for e, _ in named_items]
        having = core.having
        full_mapping: dict[A.Expr, A.Expr] = {}
        if has_agg:
            node, mapping = self._plan_aggregate(
                node, core, named_items, alias_map, cte_env
            )
            full_mapping.update(mapping)
            select_exprs = [_replace(e, mapping) for e in select_exprs]
            if having is not None:
                having = _replace(having, mapping)
                node = P.Filter(node, having)
        elif having is not None:
            raise PlanningError("HAVING without aggregation")

        # windows
        window_calls: list[A.WindowFunc] = []
        for expr in select_exprs:
            for w in _collect_windows(expr):
                if w not in window_calls:
                    window_calls.append(w)
        if window_calls:
            win_items = [(w, f"_win{i}") for i, w in enumerate(window_calls)]
            node = P.Window(node, win_items)
            wmap: dict[A.Expr, A.Expr] = {w: A.ColumnRef(name) for w, name in win_items}
            full_mapping.update(wmap)
            select_exprs = [_replace(e, wmap) for e in select_exprs]

        node = P.Project(node, list(zip(select_exprs, [n for _, n in named_items])))
        if core.distinct:
            node = P.Distinct(node)
        return node, full_mapping

    def _plan_aggregate(self, node, core, named_items, alias_map, cte_env):
        # resolve GROUP BY entries: ordinals and select aliases allowed
        group_exprs: list[A.Expr] = []
        for g in core.group_by:
            if isinstance(g, A.Literal) and isinstance(g.value, int) and not g.is_date:
                idx = g.value - 1
                if not 0 <= idx < len(named_items):
                    raise PlanningError(f"GROUP BY ordinal {g.value} out of range")
                group_exprs.append(named_items[idx][0])
                continue
            if isinstance(g, A.ColumnRef) and g.table is None and g.name in alias_map:
                child_names = output_names(node, self._catalog)
                if not _resolvable(g.name, None, child_names):
                    group_exprs.append(alias_map[g.name])
                    continue
            group_exprs.append(g)
        # dedupe structurally, preserving order
        seen: set[A.Expr] = set()
        group_exprs = [g for g in group_exprs if not (g in seen or seen.add(g))]

        group_items: list[tuple[A.Expr, str]] = []
        mapping: dict[A.Expr, A.Expr] = {}
        for i, g in enumerate(group_exprs):
            if isinstance(g, A.ColumnRef):
                name = g.name
            else:
                name = f"_g{i}"
            if any(name == n for _, n in group_items):
                name = f"_g{i}"
            group_items.append((g, name))
            mapping[g] = A.ColumnRef(name)

        agg_calls: list[A.FuncCall] = []
        sources = [e for e, _ in named_items]
        if core.having is not None:
            sources.append(core.having)
        for expr in sources:
            for call in _collect_aggregates(expr):
                if call not in agg_calls:
                    agg_calls.append(call)
        agg_items = [(call, f"_agg{i}") for i, call in enumerate(agg_calls)]
        for call, name in agg_items:
            mapping[call] = A.ColumnRef(name)

        agg_node = P.Aggregate(node, group_items, agg_items, rollup=core.group_rollup)
        return agg_node, mapping

    # -- ORDER BY -------------------------------------------------------------------

    def _plan_order_by(self, node: P.PlanNode, keys: tuple[A.SortKey, ...]) -> P.PlanNode:
        names = output_names(node, self._catalog)
        resolved: list[A.SortKey] = []
        for key in keys:
            expr = key.expr
            if isinstance(expr, A.Literal) and isinstance(expr.value, int) and not expr.is_date:
                idx = expr.value - 1
                if not 0 <= idx < len(names):
                    raise PlanningError(f"ORDER BY ordinal {expr.value} out of range")
                expr = A.ColumnRef(names[idx])
            resolved.append(A.SortKey(expr, key.ascending, key.nulls_first))

        # keys not covered by the select list sort on hidden columns
        # computed before the projection, which is then re-applied
        if isinstance(node, P.Project):
            child_names = output_names(node.child, self._catalog)
            hidden: list[tuple[A.Expr, str]] = []
            final_keys: list[A.SortKey] = []
            for key in resolved:
                if refs_bound(key.expr, names) and not A.contains_aggregate(key.expr):
                    final_keys.append(key)
                    continue
                if refs_bound(key.expr, child_names):
                    hname = f"_ord{len(hidden)}"
                    hidden.append((key.expr, hname))
                    final_keys.append(
                        A.SortKey(A.ColumnRef(hname), key.ascending, key.nulls_first)
                    )
                else:
                    final_keys.append(key)
            if hidden:
                widened = P.Project(node.child, list(node.items) + hidden)
                sorted_node = P.Sort(widened, final_keys)
                visible = [
                    (A.ColumnRef(name), name) for _, name in node.items
                ]
                return P.Project(sorted_node, visible)
            return P.Sort(node, final_keys)
        return P.Sort(node, resolved)


# -- predicate utilities shared with the optimizer ------------------------------


def split_conjuncts(expr: A.Expr) -> list[A.Expr]:
    """Flatten an AND tree into its conjunct list."""
    if isinstance(expr, A.BinaryOp) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def and_all(conjuncts: list[A.Expr]) -> Optional[A.Expr]:
    """AND a conjunct list back together (None when empty)."""
    if not conjuncts:
        return None
    result = conjuncts[0]
    for c in conjuncts[1:]:
        result = A.BinaryOp("AND", result, c)
    return result


def _equi_pair(expr: A.Expr, names_l: list[str], names_r: list[str]):
    """If ``expr`` is ``left_col = right_col`` across the two sides, return
    the ordered pair; otherwise None."""
    if not (isinstance(expr, A.BinaryOp) and expr.op == "="):
        return None
    a, b = expr.left, expr.right
    if refs_bound(a, names_l) and refs_bound(b, names_r) and _has_ref(a) and _has_ref(b):
        return (a, b)
    if refs_bound(a, names_r) and refs_bound(b, names_l) and _has_ref(a) and _has_ref(b):
        return (b, a)
    return None


def _has_ref(expr: A.Expr) -> bool:
    return any(isinstance(n, A.ColumnRef) for n in A.walk(expr))
