"""Batches: the runtime unit flowing between physical operators.

A :class:`Batch` is an ordered mapping of column name to :class:`Vector`.
Column names follow the convention documented in :mod:`repro.engine.plan`:
``binding.column`` for scanned columns and bare aliases for computed ones.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from .errors import PlanningError
from .vector import Vector


class Batch:
    """An ordered set of equal-length named vectors."""

    def __init__(self, columns: dict[str, Vector] | None = None):
        self.columns: dict[str, Vector] = dict(columns or {})
        lengths = {len(v) for v in self.columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"ragged batch: lengths {sorted(lengths)}")

    @property
    def num_rows(self) -> int:
        for v in self.columns.values():
            return len(v)
        return 0

    @property
    def names(self) -> list[str]:
        return list(self.columns)

    @property
    def nbytes(self) -> int:
        """Approximate memory footprint of all column vectors."""
        return sum(v.nbytes for v in self.columns.values())

    def add(self, name: str, vector: Vector) -> None:
        if self.columns and len(vector) != self.num_rows:
            raise ValueError("vector length mismatch on add")
        self.columns[name] = vector

    def resolve_name(self, name: str, table: Optional[str] = None) -> str:
        """Resolve a possibly-unqualified column reference to a batch key.

        Qualified refs (``table.name``) must match exactly. Unqualified
        refs match a bare key first, then a unique ``*.name`` suffix.
        """
        if table is not None:
            key = f"{table}.{name}"
            if key in self.columns:
                return key
            raise PlanningError(f"unknown column {key!r}")
        if name in self.columns:
            return name
        suffix = "." + name
        matches = [k for k in self.columns if k.endswith(suffix)]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise PlanningError(f"unknown column {name!r}")
        raise PlanningError(f"ambiguous column {name!r}: {sorted(matches)}")

    def has_column(self, name: str, table: Optional[str] = None) -> bool:
        try:
            self.resolve_name(name, table)
            return True
        except PlanningError:
            return False

    def column(self, name: str, table: Optional[str] = None) -> Vector:
        return self.columns[self.resolve_name(name, table)]

    def take(self, indices: np.ndarray) -> "Batch":
        return Batch({k: v.take(indices) for k, v in self.columns.items()})

    def filter(self, mask: np.ndarray) -> "Batch":
        return Batch({k: v.filter(mask) for k, v in self.columns.items()})

    def slice(self, start: int, stop: int) -> "Batch":
        """A zero-copy row-range view (the executor's morsel cut)."""
        return Batch({k: v.slice(start, stop) for k, v in self.columns.items()})

    def head(self, limit: int, offset: int = 0) -> "Batch":
        idx = np.arange(offset, min(self.num_rows, offset + limit))
        return self.take(idx)

    def rows(self) -> list[tuple]:
        """Materialize as Python row tuples (column order preserved)."""
        cols = [v.to_list() for v in self.columns.values()]
        return list(zip(*cols)) if cols else []

    @staticmethod
    def concat(parts: Iterable["Batch"]) -> "Batch":
        parts = [p for p in parts]
        if not parts:
            raise ValueError("concat of zero batches")
        names = parts[0].names
        for p in parts[1:]:
            if p.names != names:
                raise ValueError("batch schema mismatch in concat")
        return Batch(
            {n: Vector.concat([p.columns[n] for p in parts]) for n in names}
        )

    def renamed(self, mapping: dict[str, str]) -> "Batch":
        return Batch({mapping.get(k, k): v for k, v in self.columns.items()})
