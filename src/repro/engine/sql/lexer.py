"""Tokenizer for the SQL subset.

Produces a flat list of :class:`Token` with 1-based line/column positions
for error reporting. Handles ``--`` line comments, ``/* */`` block
comments, single-quoted strings with doubled-quote escapes, numeric
literals (int/decimal), identifiers, and multi-character operators.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SqlSyntaxError

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
    "OFFSET", "AS", "AND", "OR", "NOT", "IN", "BETWEEN", "LIKE", "IS",
    "NULL", "TRUE", "FALSE", "CASE", "WHEN", "THEN", "ELSE", "END",
    "JOIN", "INNER", "LEFT", "RIGHT", "FULL", "OUTER", "CROSS", "ON",
    "UNION", "ALL", "INTERSECT", "EXCEPT", "DISTINCT", "EXISTS",
    "WITH", "OVER", "PARTITION", "ASC", "DESC", "NULLS", "FIRST", "LAST",
    "INSERT", "INTO", "VALUES", "DELETE", "UPDATE", "SET", "CAST",
    "DATE", "INTERVAL", "ROLLUP", "TOP", "ESCAPE",
}

OPERATORS = ("<>", "!=", "<=", ">=", "||", "=", "<", ">", "+", "-", "*", "/",
             "(", ")", ",", ".", ";")


@dataclass(frozen=True)
class Token:
    type: str  # KEYWORD, IDENT, NUMBER, STRING, OP, EOF
    value: str
    line: int
    column: int

    def is_keyword(self, *names: str) -> bool:
        return self.type == "KEYWORD" and self.value in names

    def is_op(self, *ops: str) -> bool:
        return self.type == "OP" and self.value in ops


def tokenize(text: str) -> list[Token]:
    """Tokenize SQL text into a Token list ending with EOF."""
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(text)

    def advance(k: int) -> None:
        nonlocal i, line, col
        for _ in range(k):
            if i < n and text[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = text[i]
        if ch in " \t\r\n":
            advance(1)
            continue
        if text.startswith("--", i):
            while i < n and text[i] != "\n":
                advance(1)
            continue
        if text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end < 0:
                raise SqlSyntaxError("unterminated block comment", line, col)
            advance(end + 2 - i)
            continue
        if ch == "'":
            start_line, start_col = line, col
            advance(1)
            buf: list[str] = []
            while True:
                if i >= n:
                    raise SqlSyntaxError("unterminated string", start_line, start_col)
                if text[i] == "'":
                    if i + 1 < n and text[i + 1] == "'":
                        buf.append("'")
                        advance(2)
                        continue
                    advance(1)
                    break
                buf.append(text[i])
                advance(1)
            tokens.append(Token("STRING", "".join(buf), start_line, start_col))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            start_line, start_col = line, col
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # avoid swallowing "1." followed by identifier (qualified ref)
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            value = text[i:j]
            advance(j - i)
            tokens.append(Token("NUMBER", value, start_line, start_col))
            continue
        if ch.isalpha() or ch == "_":
            start_line, start_col = line, col
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            advance(j - i)
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("KEYWORD", upper, start_line, start_col))
            else:
                tokens.append(Token("IDENT", word.lower(), start_line, start_col))
            continue
        if ch == '"':
            start_line, start_col = line, col
            end = text.find('"', i + 1)
            if end < 0:
                raise SqlSyntaxError("unterminated quoted identifier", line, col)
            word = text[i + 1:end]
            advance(end + 1 - i)
            tokens.append(Token("IDENT", word.lower(), start_line, start_col))
            continue
        matched = False
        for op in OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token("OP", op, line, col))
                advance(len(op))
                matched = True
                break
        if not matched:
            raise SqlSyntaxError(f"unexpected character {ch!r}", line, col)
    tokens.append(Token("EOF", "", line, col))
    return tokens
