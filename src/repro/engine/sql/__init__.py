"""SQL front end: lexer, AST and parser for the engine dialect."""
