"""Recursive-descent parser for the SQL subset.

Grammar highlights (see :mod:`ast_nodes` for the produced tree):

* queries: ``WITH`` CTEs, set operations (``INTERSECT`` binds tighter
  than ``UNION`` / ``EXCEPT``), ``ORDER BY``, ``LIMIT`` / ``OFFSET``;
* select cores: ``DISTINCT``, expression select-lists with aliases,
  comma joins and ANSI joins, ``GROUP BY`` (optionally ``ROLLUP``),
  ``HAVING``;
* expressions: precedence-climbing with OR < AND < NOT < comparison /
  IS / IN / BETWEEN / LIKE < additive < multiplicative < unary;
* window functions: ``agg(...) OVER (PARTITION BY ... ORDER BY ...)``
  and the ranking functions;
* DML: ``INSERT ... VALUES/SELECT``, ``DELETE``, ``UPDATE``.
"""

from __future__ import annotations

from typing import Optional

from ..errors import SqlSyntaxError
from ..types import parse_date
from . import ast_nodes as A
from .lexer import Token, tokenize

AGGREGATE_FUNCS = {
    "SUM", "AVG", "MIN", "MAX", "COUNT", "STDDEV_SAMP", "VAR_SAMP", "STDDEV",
}

RANKING_FUNCS = {"RANK", "DENSE_RANK", "ROW_NUMBER"}

SCALAR_FUNCS = {
    "SUBSTR", "SUBSTRING", "COALESCE", "ABS", "ROUND", "UPPER", "LOWER",
    "LENGTH", "NULLIF", "FLOOR", "CEIL", "MOD", "TRIM", "YEAR", "MONTH",
    "DAY", "POWER", "SQRT", "LEAST", "GREATEST",
}


def parse_statement(sql: str) -> A.Statement:
    """Parse one SQL statement (query or DML) into its AST."""
    return _Parser(tokenize(sql)).parse_statement()


def parse_query(sql: str) -> A.Query:
    """Parse SQL that must be a query; rejects DML."""
    stmt = parse_statement(sql)
    if not isinstance(stmt, A.Query):
        raise SqlSyntaxError("expected a query")
    return stmt


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ------------------------------------------------------

    @property
    def _cur(self) -> Token:
        return self._tokens[self._pos]

    def _peek(self, offset: int = 1) -> Token:
        i = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[i]

    def _advance(self) -> Token:
        tok = self._cur
        if tok.type != "EOF":
            self._pos += 1
        return tok

    def _error(self, message: str) -> SqlSyntaxError:
        tok = self._cur
        shown = tok.value or tok.type
        return SqlSyntaxError(f"{message} (found {shown!r})", tok.line, tok.column)

    def _accept_kw(self, *names: str) -> bool:
        if self._cur.is_keyword(*names):
            self._advance()
            return True
        return False

    def _expect_kw(self, name: str) -> None:
        if not self._accept_kw(name):
            raise self._error(f"expected {name}")

    def _accept_op(self, *ops: str) -> bool:
        if self._cur.is_op(*ops):
            self._advance()
            return True
        return False

    def _expect_op(self, op: str) -> None:
        if not self._accept_op(op):
            raise self._error(f"expected {op!r}")

    def _expect_ident(self) -> str:
        if self._cur.type == "IDENT":
            return self._advance().value
        # allow non-reserved keywords used as identifiers in a pinch
        if self._cur.type == "KEYWORD" and self._cur.value in ("DATE", "YEAR"):
            return self._advance().value.lower()
        raise self._error("expected identifier")

    def _parse_table_name(self) -> str:
        """A possibly schema-qualified table name: ``sys.statements``
        parses as the single dotted name the catalog resolves."""
        name = self._expect_ident()
        if self._accept_op("."):
            name = f"{name}.{self._expect_ident()}"
        return name

    # -- statements ----------------------------------------------------------

    def parse_statement(self) -> A.Statement:
        """Parse one SQL statement (query or DML) into its AST."""
        if self._cur.is_keyword("SELECT", "WITH") or self._cur.is_op("("):
            stmt: A.Statement = self._parse_query()
        elif self._cur.is_keyword("INSERT"):
            stmt = self._parse_insert()
        elif self._cur.is_keyword("DELETE"):
            stmt = self._parse_delete()
        elif self._cur.is_keyword("UPDATE"):
            stmt = self._parse_update()
        else:
            raise self._error("expected SELECT, WITH, INSERT, DELETE or UPDATE")
        self._accept_op(";")
        if self._cur.type != "EOF":
            raise self._error("unexpected trailing input")
        return stmt

    def _parse_insert(self) -> A.Insert:
        self._expect_kw("INSERT")
        self._expect_kw("INTO")
        table = self._parse_table_name()
        columns: tuple[str, ...] = ()
        if self._cur.is_op("(") and self._peek().type == "IDENT":
            # disambiguate column list from INSERT INTO t (SELECT ...)
            save = self._pos
            self._advance()
            names = [self._expect_ident()]
            while self._accept_op(","):
                names.append(self._expect_ident())
            if self._accept_op(")") and (
                self._cur.is_keyword("VALUES", "SELECT", "WITH")
            ):
                columns = tuple(names)
            else:
                self._pos = save
        if self._accept_kw("VALUES"):
            rows = [self._parse_value_row()]
            while self._accept_op(","):
                rows.append(self._parse_value_row())
            return A.Insert(table, columns, rows=tuple(rows))
        query = self._parse_query()
        return A.Insert(table, columns, query=query)

    def _parse_value_row(self) -> tuple[A.Expr, ...]:
        self._expect_op("(")
        exprs = [self.parse_expr()]
        while self._accept_op(","):
            exprs.append(self.parse_expr())
        self._expect_op(")")
        return tuple(exprs)

    def _parse_delete(self) -> A.Delete:
        self._expect_kw("DELETE")
        self._expect_kw("FROM")
        table = self._parse_table_name()
        where = self.parse_expr() if self._accept_kw("WHERE") else None
        return A.Delete(table, where)

    def _parse_update(self) -> A.Update:
        self._expect_kw("UPDATE")
        table = self._parse_table_name()
        self._expect_kw("SET")
        assignments = [self._parse_assignment()]
        while self._accept_op(","):
            assignments.append(self._parse_assignment())
        where = self.parse_expr() if self._accept_kw("WHERE") else None
        return A.Update(table, tuple(assignments), where)

    def _parse_assignment(self) -> tuple[str, A.Expr]:
        name = self._expect_ident()
        self._expect_op("=")
        return name, self.parse_expr()

    # -- queries ----------------------------------------------------------------

    def _parse_query(self) -> A.Query:
        ctes: list[A.Cte] = []
        if self._accept_kw("WITH"):
            ctes.append(self._parse_cte())
            while self._accept_op(","):
                ctes.append(self._parse_cte())
        body = self._parse_set_expr()
        order_by: tuple[A.SortKey, ...] = ()
        if self._accept_kw("ORDER"):
            self._expect_kw("BY")
            order_by = self._parse_sort_keys()
        limit: Optional[int] = None
        offset = 0
        if self._accept_kw("LIMIT"):
            limit = self._parse_int_literal()
            if self._accept_kw("OFFSET"):
                offset = self._parse_int_literal()
        return A.Query(body, tuple(ctes), order_by, limit, offset)

    def _parse_cte(self) -> A.Cte:
        name = self._expect_ident()
        self._expect_kw("AS")
        self._expect_op("(")
        query = self._parse_query()
        self._expect_op(")")
        return A.Cte(name, query)

    def _parse_int_literal(self) -> int:
        if self._cur.type != "NUMBER":
            raise self._error("expected integer literal")
        return int(self._advance().value)

    def _parse_sort_keys(self) -> tuple[A.SortKey, ...]:
        keys = [self._parse_sort_key()]
        while self._accept_op(","):
            keys.append(self._parse_sort_key())
        return tuple(keys)

    def _parse_sort_key(self) -> A.SortKey:
        expr = self.parse_expr()
        ascending = True
        if self._accept_kw("ASC"):
            ascending = True
        elif self._accept_kw("DESC"):
            ascending = False
        nulls_first: Optional[bool] = None
        if self._accept_kw("NULLS"):
            if self._accept_kw("FIRST"):
                nulls_first = True
            else:
                self._expect_kw("LAST")
                nulls_first = False
        return A.SortKey(expr, ascending, nulls_first)

    def _parse_set_expr(self):
        left = self._parse_intersect_expr()
        while self._cur.is_keyword("UNION", "EXCEPT"):
            op = self._advance().value.lower()
            if op == "union" and self._accept_kw("ALL"):
                op = "union_all"
            right = self._parse_intersect_expr()
            left = A.SetOp(op, left, right)
        return left

    def _parse_intersect_expr(self):
        left = self._parse_set_operand()
        while self._accept_kw("INTERSECT"):
            right = self._parse_set_operand()
            left = A.SetOp("intersect", left, right)
        return left

    def _parse_set_operand(self):
        if self._accept_op("("):
            inner = self._parse_query()
            self._expect_op(")")
            if inner.ctes or inner.order_by or inner.limit is not None:
                # keep as derived table semantics by wrapping in SELECT *
                return A.SelectCore(
                    items=(A.SelectItem(A.Star()),),
                    from_=(A.DerivedTable(inner, alias="__sub"),),
                )
            return inner.body
        return self._parse_select_core()

    def _parse_select_core(self) -> A.SelectCore:
        self._expect_kw("SELECT")
        distinct = False
        if self._accept_kw("DISTINCT"):
            distinct = True
        elif self._accept_kw("ALL"):
            pass
        items = [self._parse_select_item()]
        while self._accept_op(","):
            items.append(self._parse_select_item())
        from_: tuple[A.TableRef, ...] = ()
        if self._accept_kw("FROM"):
            refs = [self._parse_table_ref()]
            while self._accept_op(","):
                refs.append(self._parse_table_ref())
            from_ = tuple(refs)
        where = self.parse_expr() if self._accept_kw("WHERE") else None
        group_by: tuple[A.Expr, ...] = ()
        group_rollup = False
        if self._accept_kw("GROUP"):
            self._expect_kw("BY")
            if self._accept_kw("ROLLUP"):
                group_rollup = True
                self._expect_op("(")
                exprs = [self.parse_expr()]
                while self._accept_op(","):
                    exprs.append(self.parse_expr())
                self._expect_op(")")
                group_by = tuple(exprs)
            else:
                exprs = [self.parse_expr()]
                while self._accept_op(","):
                    exprs.append(self.parse_expr())
                group_by = tuple(exprs)
        having = self.parse_expr() if self._accept_kw("HAVING") else None
        return A.SelectCore(
            items=tuple(items),
            from_=from_,
            where=where,
            group_by=group_by,
            group_rollup=group_rollup,
            having=having,
            distinct=distinct,
        )

    def _parse_select_item(self) -> A.SelectItem:
        if self._cur.is_op("*"):
            self._advance()
            return A.SelectItem(A.Star())
        if (
            self._cur.type == "IDENT"
            and self._peek().is_op(".")
            and self._peek(2).is_op("*")
        ):
            table = self._advance().value
            self._advance()  # .
            self._advance()  # *
            return A.SelectItem(A.Star(table))
        expr = self.parse_expr()
        alias: Optional[str] = None
        if self._accept_kw("AS"):
            alias = self._expect_ident()
        elif self._cur.type == "IDENT":
            alias = self._advance().value
        return A.SelectItem(expr, alias)

    # -- table references -----------------------------------------------------

    def _parse_table_ref(self) -> A.TableRef:
        left = self._parse_table_primary()
        while True:
            kind: Optional[str] = None
            if self._accept_kw("CROSS"):
                kind = "cross"
                self._expect_kw("JOIN")
            elif self._accept_kw("INNER"):
                kind = "inner"
                self._expect_kw("JOIN")
            elif self._cur.is_keyword("LEFT", "RIGHT", "FULL"):
                kind = self._advance().value.lower()
                self._accept_kw("OUTER")
                self._expect_kw("JOIN")
            elif self._accept_kw("JOIN"):
                kind = "inner"
            else:
                return left
            right = self._parse_table_primary()
            on: Optional[A.Expr] = None
            if kind != "cross":
                self._expect_kw("ON")
                on = self.parse_expr()
            left = A.JoinRef(left, right, kind, on)

    def _parse_table_primary(self) -> A.TableRef:
        if self._accept_op("("):
            if self._cur.is_keyword("SELECT", "WITH"):
                query = self._parse_query()
                self._expect_op(")")
                self._accept_kw("AS")
                alias = self._expect_ident()
                return A.DerivedTable(query, alias)
            ref = self._parse_table_ref()
            self._expect_op(")")
            return ref
        # dotted (schema-qualified) table names resolve system tables:
        # FROM sys.statements scans the virtual table "sys.statements"
        name = self._parse_table_name()
        alias: Optional[str] = None
        if self._accept_kw("AS"):
            alias = self._expect_ident()
        elif self._cur.type == "IDENT":
            alias = self._advance().value
        return A.NamedTable(name, alias)

    # -- expressions -----------------------------------------------------------

    def parse_expr(self) -> A.Expr:
        return self._parse_or()

    def _parse_or(self) -> A.Expr:
        left = self._parse_and()
        while self._accept_kw("OR"):
            left = A.BinaryOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> A.Expr:
        left = self._parse_not()
        while self._accept_kw("AND"):
            left = A.BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> A.Expr:
        if self._accept_kw("NOT"):
            return A.UnaryOp("NOT", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> A.Expr:
        left = self._parse_additive()
        while True:
            if self._cur.is_op("=", "<>", "!=", "<", "<=", ">", ">="):
                op = self._advance().value
                if op == "!=":
                    op = "<>"
                right = self._parse_additive()
                left = A.BinaryOp(op, left, right)
                continue
            negated = False
            save = self._pos
            if self._accept_kw("NOT"):
                negated = True
                if not self._cur.is_keyword("BETWEEN", "IN", "LIKE"):
                    self._pos = save
                    return left
            if self._accept_kw("IS"):
                is_not = self._accept_kw("NOT")
                self._expect_kw("NULL")
                left = A.IsNull(left, negated=is_not)
                continue
            if self._accept_kw("BETWEEN"):
                low = self._parse_additive()
                self._expect_kw("AND")
                high = self._parse_additive()
                left = A.Between(left, low, high, negated)
                continue
            if self._accept_kw("IN"):
                self._expect_op("(")
                if self._cur.is_keyword("SELECT", "WITH"):
                    query = self._parse_query()
                    self._expect_op(")")
                    left = A.InSubquery(left, query, negated)
                else:
                    items = [self.parse_expr()]
                    while self._accept_op(","):
                        items.append(self.parse_expr())
                    self._expect_op(")")
                    left = A.InList(left, tuple(items), negated)
                continue
            if self._accept_kw("LIKE"):
                if self._cur.type != "STRING":
                    raise self._error("LIKE pattern must be a string literal")
                pattern = self._advance().value
                escape: Optional[str] = None
                if self._accept_kw("ESCAPE"):
                    if self._cur.type != "STRING" or len(self._cur.value) != 1:
                        raise self._error(
                            "ESCAPE requires a single-character string literal"
                        )
                    escape = self._advance().value
                left = A.Like(left, pattern, negated, escape)
                continue
            return left

    def _parse_additive(self) -> A.Expr:
        left = self._parse_multiplicative()
        while self._cur.is_op("+", "-", "||"):
            op = self._advance().value
            left = A.BinaryOp(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> A.Expr:
        left = self._parse_unary()
        while self._cur.is_op("*", "/"):
            op = self._advance().value
            left = A.BinaryOp(op, left, self._parse_unary())
        return left

    def _parse_unary(self) -> A.Expr:
        if self._accept_op("-"):
            operand = self._parse_unary()
            # fold negation into numeric literals (canonical form)
            if isinstance(operand, A.Literal) and isinstance(
                operand.value, (int, float)
            ) and not isinstance(operand.value, bool) and not operand.is_date:
                return A.Literal(-operand.value)
            return A.UnaryOp("-", operand)
        if self._accept_op("+"):
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> A.Expr:
        tok = self._cur
        if tok.type == "NUMBER":
            self._advance()
            value = float(tok.value) if "." in tok.value else int(tok.value)
            return A.Literal(value)
        if tok.type == "STRING":
            self._advance()
            return A.Literal(tok.value)
        if tok.is_keyword("NULL"):
            self._advance()
            return A.Literal(None)
        if tok.is_keyword("TRUE"):
            self._advance()
            return A.Literal(True)
        if tok.is_keyword("FALSE"):
            self._advance()
            return A.Literal(False)
        if tok.is_keyword("DATE") and self._peek().type == "STRING":
            self._advance()
            text = self._advance().value
            return A.Literal(parse_date(text), is_date=True)
        if tok.is_keyword("CASE"):
            return self._parse_case()
        if tok.is_keyword("CAST"):
            return self._parse_cast()
        if tok.is_keyword("EXISTS"):
            self._advance()
            self._expect_op("(")
            query = self._parse_query()
            self._expect_op(")")
            return A.Exists(query)
        if tok.is_op("("):
            self._advance()
            if self._cur.is_keyword("SELECT", "WITH"):
                query = self._parse_query()
                self._expect_op(")")
                return A.ScalarSubquery(query)
            expr = self.parse_expr()
            self._expect_op(")")
            return expr
        if tok.type == "IDENT" or tok.is_keyword("DATE", "YEAR"):
            return self._parse_name_or_call()
        raise self._error("expected expression")

    def _parse_case(self) -> A.Expr:
        self._expect_kw("CASE")
        operand: Optional[A.Expr] = None
        if not self._cur.is_keyword("WHEN"):
            operand = self.parse_expr()
        whens: list[tuple[A.Expr, A.Expr]] = []
        while self._accept_kw("WHEN"):
            cond = self.parse_expr()
            if operand is not None:
                cond = A.BinaryOp("=", operand, cond)
            self._expect_kw("THEN")
            result = self.parse_expr()
            whens.append((cond, result))
        if not whens:
            raise self._error("CASE requires at least one WHEN")
        else_ = self.parse_expr() if self._accept_kw("ELSE") else None
        self._expect_kw("END")
        return A.Case(tuple(whens), else_)

    def _parse_cast(self) -> A.Expr:
        self._expect_kw("CAST")
        self._expect_op("(")
        expr = self.parse_expr()
        self._expect_kw("AS")
        if self._cur.is_keyword("DATE"):
            self._advance()
            type_name = "date"
        else:
            type_name = self._expect_ident()
            # swallow optional (p[,s]) on decimal/char casts
            if self._accept_op("("):
                self._parse_int_literal()
                if self._accept_op(","):
                    self._parse_int_literal()
                self._expect_op(")")
        self._expect_op(")")
        return A.Cast(expr, type_name)

    def _parse_name_or_call(self) -> A.Expr:
        name = self._advance().value
        if self._cur.is_op("(") :
            return self._parse_call(name)
        if self._accept_op("."):
            column = self._expect_ident()
            return A.ColumnRef(column, table=name)
        return A.ColumnRef(name)

    def _parse_call(self, name: str) -> A.Expr:
        func_name = name.upper()
        self._expect_op("(")
        distinct = False
        is_star = False
        args: list[A.Expr] = []
        if self._accept_op("*"):
            is_star = True
        elif not self._cur.is_op(")"):
            if self._accept_kw("DISTINCT"):
                distinct = True
            args.append(self.parse_expr())
            while self._accept_op(","):
                args.append(self.parse_expr())
        self._expect_op(")")
        call = A.FuncCall(func_name, tuple(args), distinct, is_star)
        if self._accept_kw("OVER"):
            return self._parse_window(call)
        if func_name in RANKING_FUNCS:
            raise self._error(f"{func_name} requires an OVER clause")
        if (
            func_name not in AGGREGATE_FUNCS
            and func_name not in SCALAR_FUNCS
            and func_name not in RANKING_FUNCS
        ):
            raise self._error(f"unknown function {func_name}")
        return call

    def _parse_window(self, call: A.FuncCall) -> A.WindowFunc:
        self._expect_op("(")
        partition: tuple[A.Expr, ...] = ()
        order: tuple[A.SortKey, ...] = ()
        if self._accept_kw("PARTITION"):
            self._expect_kw("BY")
            exprs = [self.parse_expr()]
            while self._accept_op(","):
                exprs.append(self.parse_expr())
            partition = tuple(exprs)
        if self._accept_kw("ORDER"):
            self._expect_kw("BY")
            order = self._parse_sort_keys()
        self._expect_op(")")
        return A.WindowFunc(call, partition, order)
