"""Abstract syntax tree for the engine's SQL-99 subset.

The dialect covers what the TPC-DS query set needs: SELECT with joins
(comma and ANSI, inner/left/right/full), WHERE with 3VL predicates,
GROUP BY / HAVING (including ROLLUP), window functions with PARTITION BY
and ORDER BY, common table expressions, set operations, scalar / IN /
EXISTS subqueries, CASE, BETWEEN, LIKE, IN-lists, CAST, and DML
(INSERT / DELETE / UPDATE).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Union


# --------------------------------------------------------------------------
# expressions
# --------------------------------------------------------------------------


class Expr:
    """Base class for expression nodes."""


@dataclass(frozen=True)
class Literal(Expr):
    value: Any  # int, float, str, bool, None
    is_date: bool = False


@dataclass(frozen=True)
class ColumnRef(Expr):
    name: str
    table: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Star(Expr):
    table: Optional[str] = None


@dataclass(frozen=True)
class BinaryOp(Expr):
    op: str  # + - * / || = <> < <= > >= AND OR
    left: Expr
    right: Expr


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # NOT, -
    operand: Expr


@dataclass(frozen=True)
class FuncCall(Expr):
    name: str  # upper-cased
    args: tuple[Expr, ...]
    distinct: bool = False
    is_star: bool = False  # COUNT(*)


@dataclass(frozen=True)
class Case(Expr):
    whens: tuple[tuple[Expr, Expr], ...]
    else_: Optional[Expr] = None


@dataclass(frozen=True)
class Between(Expr):
    expr: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass(frozen=True)
class InList(Expr):
    expr: Expr
    items: tuple[Expr, ...]
    negated: bool = False


@dataclass(frozen=True)
class InSubquery(Expr):
    expr: Expr
    query: "Query"
    negated: bool = False


@dataclass(frozen=True)
class Exists(Expr):
    query: "Query"
    negated: bool = False


@dataclass(frozen=True)
class ScalarSubquery(Expr):
    query: "Query"


@dataclass(frozen=True)
class IsNull(Expr):
    expr: Expr
    negated: bool = False


@dataclass(frozen=True)
class Like(Expr):
    expr: Expr
    pattern: str
    negated: bool = False
    #: optional ESCAPE character; the following pattern character is literal
    escape: Optional[str] = None


@dataclass(frozen=True)
class Cast(Expr):
    expr: Expr
    type_name: str


@dataclass(frozen=True)
class SortKey:
    expr: Expr
    ascending: bool = True
    nulls_first: Optional[bool] = None  # None = dialect default (nulls last asc)


@dataclass(frozen=True)
class WindowFunc(Expr):
    func: FuncCall  # SUM/AVG/COUNT/MIN/MAX or RANK/DENSE_RANK/ROW_NUMBER
    partition_by: tuple[Expr, ...] = ()
    order_by: tuple[SortKey, ...] = ()


# --------------------------------------------------------------------------
# table references
# --------------------------------------------------------------------------


class TableRef:
    """Base class for FROM-clause items."""


@dataclass(frozen=True)
class NamedTable(TableRef):
    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        # a schema-qualified name binds its bare table name, so
        # ``FROM sys.statements`` exposes ``statements.query`` (mirrors
        # how SQL scopes schema-qualified references)
        if self.alias:
            return self.alias
        return self.name.rpartition(".")[2]


@dataclass(frozen=True)
class DerivedTable(TableRef):
    query: "Query"
    alias: str


@dataclass(frozen=True)
class JoinRef(TableRef):
    left: TableRef
    right: TableRef
    kind: str  # inner, left, right, full, cross
    on: Optional[Expr] = None


# --------------------------------------------------------------------------
# statements
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: Optional[str] = None


@dataclass(frozen=True)
class SelectCore:
    items: tuple[SelectItem, ...]
    from_: tuple[TableRef, ...] = ()
    where: Optional[Expr] = None
    group_by: tuple[Expr, ...] = ()
    group_rollup: bool = False
    having: Optional[Expr] = None
    distinct: bool = False


@dataclass(frozen=True)
class SetOp:
    op: str  # union, union_all, intersect, except
    left: Union[SelectCore, "SetOp"]
    right: Union[SelectCore, "SetOp"]


@dataclass(frozen=True)
class Cte:
    name: str
    query: "Query"


@dataclass(frozen=True)
class Query:
    """A full query: optional CTEs, a select/set-op body, ordering, limit."""

    body: Union[SelectCore, SetOp]
    ctes: tuple[Cte, ...] = ()
    order_by: tuple[SortKey, ...] = ()
    limit: Optional[int] = None
    offset: int = 0


@dataclass(frozen=True)
class Insert:
    table: str
    columns: tuple[str, ...]  # empty = all, in schema order
    rows: tuple[tuple[Expr, ...], ...] = ()
    query: Optional[Query] = None


@dataclass(frozen=True)
class Delete:
    table: str
    where: Optional[Expr] = None


@dataclass(frozen=True)
class Update:
    table: str
    assignments: tuple[tuple[str, Expr], ...]
    where: Optional[Expr] = None


Statement = Union[Query, Insert, Delete, Update]


def walk(expr: Expr):
    """Yield ``expr`` and all sub-expressions, depth first."""
    yield expr
    children: tuple = ()
    if isinstance(expr, BinaryOp):
        children = (expr.left, expr.right)
    elif isinstance(expr, UnaryOp):
        children = (expr.operand,)
    elif isinstance(expr, FuncCall):
        children = expr.args
    elif isinstance(expr, Case):
        children = tuple(e for pair in expr.whens for e in pair)
        if expr.else_ is not None:
            children += (expr.else_,)
    elif isinstance(expr, Between):
        children = (expr.expr, expr.low, expr.high)
    elif isinstance(expr, InList):
        children = (expr.expr,) + expr.items
    elif isinstance(expr, InSubquery):
        children = (expr.expr,)
    elif isinstance(expr, IsNull):
        children = (expr.expr,)
    elif isinstance(expr, Like):
        children = (expr.expr,)
    elif isinstance(expr, Cast):
        children = (expr.expr,)
    elif isinstance(expr, WindowFunc):
        children = (
            tuple(expr.func.args)
            + expr.partition_by
            + tuple(k.expr for k in expr.order_by)
        )
    for child in children:
        yield from walk(child)


def contains_aggregate(expr: Expr) -> bool:
    """True when the expression contains a plain (non-window) aggregate.

    ``walk`` never yields the ``FuncCall`` wrapped inside a ``WindowFunc``
    (it descends directly into the call's arguments), so any aggregate
    call that *is* yielded here is a plain grouping aggregate.
    """
    from .parser import AGGREGATE_FUNCS  # local import to avoid cycle

    return any(
        isinstance(node, FuncCall) and node.name in AGGREGATE_FUNCS
        for node in walk(expr)
    )


def contains_window(expr: Expr) -> bool:
    """True when the expression contains a window function."""
    return any(isinstance(node, WindowFunc) for node in walk(expr))
