"""repro — a pure-Python reproduction of TPC-DS.

Reproduces "The Making of TPC-DS" (Othayoth & Poess, VLDB 2006): the
snowstorm schema, the dsdgen data generator, the dsqgen query generator
with its 99-template workload, the ETL data-maintenance workload, the
execution rules and the QphDS@SF metric — plus the columnar SQL engine
substrate the workload runs on.

Quickstart::

    from repro import Benchmark
    result = Benchmark(scale_factor=0.01).run()
    print(result.report())
"""

from .core import Benchmark, RunSummary, spec
from .engine import Database, OptimizerSettings

__version__ = "1.0.0"

__all__ = ["Benchmark", "RunSummary", "spec", "Database", "OptimizerSettings", "__version__"]
