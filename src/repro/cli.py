"""Command-line interface: ``tpcds-py``.

Subcommands mirror the original kit's tools:

* ``dsdgen``  — generate flat files for a scale factor;
* ``dsqgen``  — print generated queries for a template / stream;
* ``run``     — execute the full benchmark and print the report
  (``--trace`` writes the span timeline, ``--metrics`` prints the
  metrics-registry snapshot, ``--plan-quality`` aggregates
  per-operator Q-error diagnostics);
* ``explain`` — EXPLAIN / EXPLAIN ANALYZE a generated template or
  ad-hoc SQL against a freshly loaded database (``--json`` emits the
  machine-readable plan tree);
* ``obs``     — observability tooling: ``obs diff`` compares the
  latest two benchmark runs in ``history.jsonl`` and exits nonzero on
  regressions beyond the noise threshold; ``obs trace`` exports a
  Chrome-trace/Perfetto span timeline; ``obs report`` renders the
  self-contained HTML observability dashboard;
* ``serve``   — interactive multi-tenant query service: statements
  from stdin run through admission control, quotas and the circuit
  breaker against a generated (or ``--db``-opened) database;
* ``loadgen`` — open-loop load driver: replay a phased arrival
  pattern (steady / burst / ramp) with a per-tenant qgen query mix
  against the service, check declared SLA targets, and write
  ``BENCH_service.json``;
* ``difftest`` — differential correctness run against the SQLite
  oracle: the 99 qualification queries plus a seeded query fuzzer;
  disagreements are delta-shrunk into ``tests/difftest_corpus/``;
* ``schema``  — print Table 1-style schema statistics;
* ``audit``   — generate, load and audit a database (auditor checks);
* ``scaling`` — print Table 2-style row counts for a scale factor.
"""

from __future__ import annotations

import argparse
import os
import sys

from .core.benchmark import Benchmark
from .dsdgen import DsdGen, ScalingModel
from .qgen import QGen, build_catalog
from .schema import PAPER_TABLE_1, schema_statistics


def _cmd_dsdgen(args: argparse.Namespace) -> int:
    import time

    generator = DsdGen(
        args.scale, seed=args.seed, strict=args.strict, workers=args.parallel
    )
    start = time.perf_counter()
    if args.chunk is not None:
        n_chunks = args.parallel or 1
        try:
            data = generator.generate_chunk(args.chunk, n_chunks)
        except ValueError as exc:
            print(f"dsdgen: {exc}", file=sys.stderr)
            return 2
        suffix = f"_{args.chunk}_{n_chunks}" if n_chunks > 1 else ""
    else:
        data = generator.generate()
        suffix = ""
    gen_elapsed = time.perf_counter() - start
    if args.store:
        # direct-to-store: load the generated columns into an engine
        # database and persist it, skipping the .dat round trip
        from .dsdgen import load_tables
        from .engine import Database

        if args.chunk is not None:
            print("dsdgen: --store is incompatible with --chunk",
                  file=sys.stderr)
            return 2
        start = time.perf_counter()
        db = Database()
        load_tables(db, data)
        db.gather_stats()
        db.save(args.store, scale_factor=args.scale, seed=args.seed)
        store_elapsed = time.perf_counter() - start
        total_rows = sum(data.row_counts.values())
        for name in sorted(data.row_counts):
            print(f"{name:24s} {data.row_counts[name]:>12,} rows")
        print(f"{'total':24s} {total_rows:>12,} rows")
        print(f"column store written to {args.store} "
              f"(generate {gen_elapsed:.3f}s, load+save {store_elapsed:.3f}s)")
        return 0
    start = time.perf_counter()
    sizes = data.write_flat_files(args.output, suffix=suffix)
    write_elapsed = time.perf_counter() - start
    total = sum(sizes.values())
    total_rows = sum(data.row_counts.values())
    for name in sorted(sizes):
        print(f"{name:24s} {data.row_counts[name]:>12,} rows  {sizes[name]:>14,} bytes")
    print(f"{'total':24s} {total_rows:>12,} rows  {total:>14,} bytes")
    if args.profile:
        print()
        print(f"{'-- profile':24s} {'generate (ms)':>14s}")
        for name, elapsed in sorted(data.timings.items(), key=lambda kv: -kv[1]):
            print(f"{name:24s} {elapsed * 1000.0:>14.1f}")
        from .dsdgen import load_tables
        from .engine import Database

        start = time.perf_counter()
        load_tables(Database(), data)
        load_elapsed = time.perf_counter() - start
        print()
        print(f"{'generate':24s} {gen_elapsed:>10.3f} s  "
              f"{total_rows / max(gen_elapsed, 1e-9):>14,.0f} rows/s")
        print(f"{'write flat files':24s} {write_elapsed:>10.3f} s  "
              f"{total_rows / max(write_elapsed, 1e-9):>14,.0f} rows/s")
        print(f"{'load into engine':24s} {load_elapsed:>10.3f} s  "
              f"{total_rows / max(load_elapsed, 1e-9):>14,.0f} rows/s")
    return 0


def _cmd_dsqgen(args: argparse.Namespace) -> int:
    generator = DsdGen(args.scale, seed=args.seed)
    generator.generate()  # registers key pools used by substitutions
    qgen = QGen(generator.context, build_catalog())
    ids = [args.template] if args.template else sorted(qgen.templates)
    for template_id in ids:
        query = qgen.generate(template_id, stream=args.stream)
        print(f"-- query {query.template_id} ({query.name}; {query.query_class};"
              f" {query.channel_part} part)")
        print(query.sql.strip())
        print(";")
    return 0


def _parse_bytes(text: str | None) -> float | None:
    """Parse a byte size with an optional K/M/G suffix ('64M' -> 64 MiB)."""
    if text is None:
        return None
    text = text.strip()
    scale = 1
    if text and text[-1].upper() in "KMG":
        scale = {"K": 1 << 10, "M": 1 << 20, "G": 1 << 30}[text[-1].upper()]
        text = text[:-1]
    return float(text) * scale


def _cmd_run(args: argparse.Namespace) -> int:
    if args.metrics:
        from .obs import MetricsRegistry, set_registry

        set_registry(MetricsRegistry(enabled=True))
    faults = None
    if args.fault_error_rate or args.fault_delay_rate:
        from .faults import FaultInjector

        faults = FaultInjector(
            seed=args.fault_seed,
            error_rate=args.fault_error_rate,
            delay_rate=args.fault_delay_rate,
            max_delay_s=args.fault_max_delay,
        )
    if args.sample_metrics and not args.metrics:
        # sampling implies a live registry — empty samples help nobody
        from .obs import MetricsRegistry, set_registry

        set_registry(MetricsRegistry(enabled=True))
    bench = Benchmark(
        scale_factor=args.scale,
        streams=args.streams,
        seed=args.seed,
        db_path=args.db,
        use_aux_structures=not args.no_aux,
        strict=args.strict,
        plan_quality=args.plan_quality,
        query_timeout_s=args.timeout,
        query_mem_budget_bytes=_parse_bytes(args.mem_budget),
        max_query_retries=args.retries,
        checkpoint_path=args.checkpoint,
        resume=args.resume,
        faults=faults,
        workers=args.workers,
        sample_metrics=bool(args.sample_metrics),
        sample_interval_s=args.sample_interval,
        sample_metrics_path=args.sample_metrics,
        statement_store_path=args.statement_store,
    )
    summary = bench.run()
    if args.full:
        from .runner import render_full_disclosure

        print(render_full_disclosure(summary.result))
    else:
        print(summary.report())
        if args.plan_quality and summary.result.plan_quality:
            from .runner import render_plan_quality

            print()
            print("\n".join(render_plan_quality(summary.result.plan_quality)))
    if args.trace:
        import json

        with open(args.trace, "w", encoding="utf-8") as handle:
            json.dump(summary.result.trace, handle, indent=2)
        print(f"\nspan timeline written to {args.trace} "
              f"({len(summary.result.trace)} spans)")
    if args.metrics:
        from .obs import get_registry

        print()
        print("metrics registry snapshot")
        print(get_registry().to_json())
    if args.telemetry:
        import json

        from .obs import get_registry
        from .runner import telemetry_bundle

        metrics = (get_registry().snapshot()
                   if get_registry().enabled else None)
        with open(args.telemetry, "w", encoding="utf-8") as handle:
            json.dump(telemetry_bundle(summary.result, metrics=metrics),
                      handle, indent=2)
        print(f"telemetry bundle written to {args.telemetry}")
    if args.sample_metrics:
        print(f"metrics time-series written to {args.sample_metrics} "
              f"({len(summary.result.metrics_series)} samples)")
    if args.statement_store and summary.result.statements:
        print(f"statement store written to {args.statement_store} "
              f"({summary.result.statements['fingerprints']} fingerprints)")
    return 0 if summary.result.compliant else 1


def _service_db(args: argparse.Namespace):
    """A (database, qgen) pair for ``serve`` / ``loadgen``: either the
    persistent store at ``--db`` (adopting its scale factor and seed)
    or a freshly generated database at ``--scale``."""
    from .dsdgen import build_database

    if args.db:
        from .dsdgen.context import GeneratorContext
        from .engine import Database

        db = Database.open(args.db)
        info = db.store_info or {}
        scale = info.get("scale_factor") or args.scale
        seed = int(info.get("seed") or args.seed)
        context = GeneratorContext(scale, seed)
        context.ensure_key_pools()
        return db, QGen(context, build_catalog())
    db, data = build_database(args.scale, seed=args.seed)
    return db, QGen(data.context, build_catalog())


def _service_quota(args: argparse.Namespace):
    from .service import TenantQuota

    return TenantQuota(
        max_concurrent=args.max_concurrent,
        max_queue_depth=args.queue_depth,
        statement_timeout_s=args.timeout,
        mem_budget_bytes=_parse_bytes(args.mem_budget),
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import AdmissionRejected, QueryService

    db, _ = _service_db(args)
    service = QueryService(
        db,
        workers=args.workers or 2,
        default_quota=_service_quota(args),
        breaker_threshold=args.breaker_threshold,
        breaker_reset_s=args.breaker_reset,
    )
    session = service.create_session(args.tenant)
    interactive = sys.stdin.isatty()
    if interactive:
        print(f"tpcds-py serve: tenant {args.tenant!r}; ';'-terminated "
              f"statements, EOF (ctrl-d) quits")
    buffered = ""
    try:
        for line in sys.stdin:
            buffered += line
            while ";" in buffered:
                sql, buffered = buffered.split(";", 1)
                if not sql.strip():
                    continue
                try:
                    result = session.execute(sql)
                except AdmissionRejected as shed:
                    print(f"shed ({shed.reason}): retry after "
                          f"{shed.retry_after_s:.3f}s", file=sys.stderr)
                    continue
                except Exception as exc:
                    print(f"error: {type(exc).__name__}: {exc}",
                          file=sys.stderr)
                    continue
                for row in result.rows():
                    print("\t".join(str(v) for v in row))
                print(f"({len(result)} rows in {result.elapsed:.3f}s)",
                      file=sys.stderr)
    finally:
        session.close()
        service.close()
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import json

    from .service import (
        LoadDriver,
        QueryService,
        SLATarget,
        TenantProfile,
        parse_phases,
    )

    try:
        phases = parse_phases(args.phases)
    except ValueError as exc:
        print(f"loadgen: {exc}", file=sys.stderr)
        return 2
    templates = tuple(int(t) for t in args.templates.split(","))
    sla = SLATarget(p99_s=args.sla_p99, max_error_rate=args.sla_error_rate)
    names = [name.strip() for name in args.tenants.split(",") if name.strip()]
    if not names:
        print("loadgen: --tenants named nobody", file=sys.stderr)
        return 2
    quota = _service_quota(args)
    profiles = [
        TenantProfile(name, weight=1.0, templates=templates, sla=sla,
                      quota=quota)
        for name in names
    ]

    db, qgen = _service_db(args)
    service = QueryService(
        db,
        workers=args.workers or 2,
        default_quota=quota,
        breaker_threshold=args.breaker_threshold,
        breaker_reset_s=args.breaker_reset,
    )
    if args.fault_rate and args.fault_tenant:
        from .faults import FaultInjector

        service.set_faults(args.fault_tenant, FaultInjector(
            seed=args.fault_seed,
            error_rate=args.fault_rate,
            scope=("query", "operator"),
        ))
    driver = LoadDriver(service, qgen, profiles, phases, seed=args.seed)
    print(f"loadgen: {len(driver.schedule)} arrivals over "
          f"{sum(p.duration_s for p in phases):g}s across "
          f"{len(profiles)} tenant(s)", file=sys.stderr)
    report = driver.run()
    service.close()

    from .runner import render_load_report

    print(render_load_report(report.as_dict()))
    if args.out:
        report.write_json(args.out)
        print(f"load report written to {args.out}", file=sys.stderr)
    if args.sys_dump:
        result = db.execute("SELECT * FROM sys.service")
        print(json.dumps(
            [dict(zip(result.column_names, row)) for row in result.rows()],
            indent=1, default=str,
        ))
    return 0 if report.ok else 1


def _cmd_explain(args: argparse.Namespace) -> int:
    from .dsdgen import build_database

    db, data = build_database(args.scale, seed=args.seed)
    if args.sql:
        sql = args.sql
    else:
        qgen = QGen(data.context, build_catalog())
        query = qgen.generate(args.template, stream=args.stream)
        sql = query.statements[0]
        if not args.json:
            print(f"-- query {query.template_id} ({query.name}; "
                  f"{query.query_class}; {query.channel_part} part)")
    bounds = {
        "timeout_s": args.timeout,
        "mem_budget_bytes": _parse_bytes(args.mem_budget),
        "workers": args.workers,
    }
    if args.json:
        import json

        payload = (
            db.explain_analyze_dict(sql, **bounds)
            if args.analyze
            else db.explain_dict(sql)
        )
        print(json.dumps(payload, indent=2))
    else:
        print(db.explain_analyze(sql, **bounds) if args.analyze else db.explain(sql))
    return 0


def _collect_telemetry(args: argparse.Namespace) -> dict:
    """The telemetry bundle ``obs trace`` / ``obs report`` render:
    loaded from ``--input`` when given, else measured fresh by a power
    run (streams=1) with the tracer, registry and pool profiler on."""
    import json

    if args.input:
        with open(args.input, encoding="utf-8") as handle:
            return json.load(handle)
    from .obs import MetricsRegistry, get_registry, set_registry
    from .runner import telemetry_bundle
    from .runner.execution import BenchmarkConfig, run_benchmark

    print(f"running sf={args.scale} streams={args.streams} "
          f"workers={args.workers} to collect telemetry ...", file=sys.stderr)
    previous = set_registry(MetricsRegistry(enabled=True))
    try:
        config = BenchmarkConfig(
            scale_factor=args.scale,
            streams=args.streams,
            seed=args.seed,
            workers=args.workers,
            plan_quality=True,
        )
        result, _ = run_benchmark(config)
        return telemetry_bundle(result, metrics=get_registry().snapshot())
    finally:
        set_registry(previous)


def _cmd_obs(args: argparse.Namespace) -> int:
    import json

    if args.action == "diff":
        from .obs import compare_latest, load_history

        history = load_history(args.history)
        report = compare_latest(history, threshold=args.threshold)
        print(report.render())
        return report.exit_code()
    if args.action == "history":
        from .obs import load_history, prune_history

        if args.prune:
            kept, dropped = prune_history(args.history, args.keep)
            print(f"history pruned to last {args.keep} run(s) per"
                  f" (sha, module): {kept} kept, {dropped} dropped")
            return 0
        records = load_history(args.history)
        by_key: dict = {}
        for record in records:
            key = (record.get("sha", "")[:12], record.get("module", ""))
            by_key[key] = by_key.get(key, 0) + 1
        print(f"{len(records)} record(s) in {args.history}")
        for (sha, module), count in sorted(by_key.items()):
            print(f"  {sha:12s} {module:36s} {count} run(s)")
        return 0
    if args.action == "top":
        from .obs import load_store

        if not os.path.exists(args.store):
            print(f"obs top: no statement store at {args.store}",
                  file=sys.stderr)
            return 1
        store = load_store(args.store)
        try:
            try:
                rows = store.top(by=args.by, limit=args.limit)
            except ValueError as exc:
                print(f"obs top: {exc}", file=sys.stderr)
                return 2
            print(f"top {len(rows)} statement(s) by {args.by} "
                  f"({len(store)} fingerprints in {args.store})")
            print(f"  {'calls':>6s} {'total s':>9s} {'mean ms':>9s} "
                  f"{'rows':>9s} {'spill':>10s} {'q_err':>6s}  "
                  f"fingerprint / statement")
            for stats in rows:
                query = " ".join(stats.query.split())
                print(f"  {stats.calls:>6d} {stats.total_elapsed:>9.3f} "
                      f"{stats.mean_elapsed * 1000:>9.1f} {stats.rows:>9d} "
                      f"{stats.spilled_bytes:>10,} "
                      f"{stats.worst_q_error:>6.1f}  "
                      f"{stats.fingerprint}  {query:.60s}")
        finally:
            store.close()
        return 0
    if args.action == "trace":
        from .obs import to_chrome_trace, validate_chrome_trace, worker_lanes

        telemetry = _collect_telemetry(args)
        doc = to_chrome_trace(telemetry.get("trace") or [])
        errors = validate_chrome_trace(doc)
        if errors:
            for error in errors[:10]:
                print(f"obs trace: {error}", file=sys.stderr)
            return 1
        out = args.out or "trace.json"
        if out == "-":
            json.dump(doc, sys.stdout)
            sys.stdout.write("\n")
            return 0
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(doc, handle)
        lanes = worker_lanes(doc)
        print(f"chrome trace written to {out} "
              f"({len(doc['traceEvents'])} events, "
              f"{len(lanes)} pool-worker lanes) — "
              f"load it at ui.perfetto.dev")
        return 0
    if args.action == "report":
        from .obs import render_html_report

        telemetry = _collect_telemetry(args)
        out = args.out or "obs_report.html"
        if out == "-":
            sys.stdout.write(render_html_report(telemetry))
            return 0
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(render_html_report(telemetry))
        print(f"observability dashboard written to {out}")
        return 0
    print(f"obs: unknown action {args.action!r}", file=sys.stderr)
    return 2


def _cmd_audit(args: argparse.Namespace) -> int:
    from .dsdgen import build_database
    from .runner import audit_database

    db, _ = build_database(args.scale, seed=args.seed)
    findings = audit_database(db, scale_factor=args.scale, deep=not args.fast)
    if not findings:
        print("audit passed: no findings")
        return 0
    for finding in findings:
        print(finding)
    return 1


def _cmd_difftest(args: argparse.Namespace) -> int:
    from .difftest import (
        DiffHarness,
        shrink_query,
        summarize,
        to_engine_sql,
    )
    from .difftest.corpus import write_repro
    from .dsdgen import build_database

    print(f"loading sf={args.scale} into engine + sqlite oracle ...")
    db, data = build_database(args.scale, seed=args.seed)
    harness = DiffHarness(db, timeout_s=args.query_timeout or None)
    outcomes = []

    if not args.skip_qualification:
        qual = harness.run_qualification(QGen(data.context, build_catalog()))
        outcomes.extend(qual)
        print(f"qualification: {summarize(qual)}")

    if args.fuzz > 0:
        # the fuzz seed rotates in CI (logged here for reproduction:
        # `tpcds-py difftest --fuzz-seed <seed>` replays the run)
        print(f"fuzz: {args.fuzz} queries, seed {args.fuzz_seed}")

        def on_mismatch(query, outcome):
            def still_fails(candidate):
                return not harness.check_query(candidate).passed

            shrunk = shrink_query(query, still_fails)
            final = harness.check_query(shrunk, label=outcome.label)
            if final.passed:  # shrink lost the repro; keep the original
                shrunk, final = query, outcome
            path = write_repro(
                args.corpus,
                to_engine_sql(shrunk),
                label=final.label or outcome.label,
                status=final.status,
                detail=final.detail,
                seed=args.fuzz_seed,
            )
            print(f"  MISMATCH {outcome.label}: shrunk repro -> {path}")

        fuzz = harness.run_fuzz(args.fuzz, args.fuzz_seed, on_mismatch)
        outcomes.extend(fuzz)
        print(f"fuzz: {summarize(fuzz)}")

    failed = [o for o in outcomes if not o.passed]
    for o in failed:
        print(f"FAIL {o.label} [{o.status}] {o.detail}")
        print(f"  engine: {o.sql}")
        print(f"  sqlite: {o.sqlite_sql}")
    print(f"total: {summarize(outcomes)}")
    return 1 if failed else 0


def _cmd_schema(args: argparse.Namespace) -> int:
    ours = schema_statistics()
    print(f"{'statistic':34s} {'ours':>10s} {'paper':>10s}")
    for (label, value), (_, paper) in zip(ours.as_rows(), PAPER_TABLE_1.as_rows()):
        print(f"{label:34s} {value!s:>10s} {paper!s:>10s}")
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    model = ScalingModel(args.scale, strict=args.strict)
    for table, rows in sorted(model.table_rows().items()):
        print(f"{table:24s} {rows:>15,}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse command-line parser."""
    parser = argparse.ArgumentParser(
        prog="tpcds-py",
        description="Pure-Python reproduction of TPC-DS (VLDB 2006).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("dsdgen", help="generate flat files")
    p.add_argument("--scale", type=float, default=0.01)
    p.add_argument("--seed", type=int, default=19620718)
    p.add_argument("--strict", action="store_true")
    p.add_argument("--output", default="tpcds_data")
    p.add_argument("--parallel", type=int, default=None, metavar="N",
                   help="generate with an N-process pool (byte-identical"
                        " to serial output)")
    p.add_argument("--chunk", type=int, default=None, metavar="I",
                   help="generate only chunk I of --parallel chunks"
                        " (1-based, like the kit's -child); chunk 1"
                        " carries the dimension tables")
    p.add_argument("--profile", action="store_true",
                   help="print per-table generation timings and"
                        " generate/write/load rows-per-second")
    p.add_argument("--store", metavar="PATH", default=None,
                   help="write a persistent column store at PATH instead"
                        " of .dat flat files (open it with `run --db`)")
    p.set_defaults(func=_cmd_dsdgen)

    p = sub.add_parser("dsqgen", help="generate queries")
    p.add_argument("--scale", type=float, default=0.01)
    p.add_argument("--seed", type=int, default=19620718)
    p.add_argument("--template", type=int, default=None)
    p.add_argument("--stream", type=int, default=0)
    p.set_defaults(func=_cmd_dsqgen)

    p = sub.add_parser("run", help="run the full benchmark")
    p.add_argument("--scale", type=float, default=0.01)
    p.add_argument("--streams", type=int, default=None)
    p.add_argument("--seed", type=int, default=19620718)
    p.add_argument("--db", metavar="PATH", default=None,
                   help="open the persistent column store at PATH"
                        " (from `dsdgen --store`) instead of generating;"
                        " the store's scale factor and seed are adopted")
    p.add_argument("--no-aux", action="store_true")
    p.add_argument("--strict", action="store_true")
    p.add_argument("--full", action="store_true",
                   help="long-form full-disclosure report")
    p.add_argument("--trace", metavar="FILE", default=None,
                   help="write the benchmark span timeline to FILE as JSON")
    p.add_argument("--metrics", action="store_true",
                   help="enable the metrics registry and print its"
                        " snapshot after the run")
    p.add_argument("--plan-quality", action="store_true",
                   help="collect per-operator Q-error diagnostics and"
                        " print the worst-offender summary")
    p.add_argument("--timeout", type=float, default=None, metavar="S",
                   help="per-query wall-clock timeout in seconds"
                        " (timed-out queries degrade, the run continues)")
    p.add_argument("--mem-budget", default=None, metavar="BYTES",
                   help="per-query memory budget; hash joins, aggregates"
                        " and sorts spill past it (accepts K/M/G suffix)")
    p.add_argument("--retries", type=int, default=2,
                   help="max retries for transient query failures"
                        " (default 2)")
    p.add_argument("--checkpoint", metavar="FILE", default=None,
                   help="journal completed queries to FILE (crash-safe)")
    p.add_argument("--resume", action="store_true",
                   help="resume from --checkpoint: skip journaled queries")
    p.add_argument("--fault-seed", type=int, default=0,
                   help="fault-injection seed")
    p.add_argument("--fault-error-rate", type=float, default=0.0,
                   help="inject transient errors at this per-query rate")
    p.add_argument("--fault-delay-rate", type=float, default=0.0,
                   help="inject random delays at this per-query rate")
    p.add_argument("--fault-max-delay", type=float, default=0.01,
                   help="max injected delay in seconds (default 0.01)")
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="morsel-parallel worker threads shared by query"
                        " streams and operators (results are byte-"
                        "identical to serial; default: serial)")
    p.add_argument("--telemetry", metavar="FILE", default=None,
                   help="write the full telemetry bundle (trace,"
                        " latency percentiles, parallelism profile,"
                        " metrics) to FILE as JSON — the input to"
                        " `obs trace` / `obs report`")
    p.add_argument("--statement-store", metavar="FILE", default=None,
                   help="journal every executed statement into a"
                        " fingerprinted statement store at FILE"
                        " (crash-safe JSONL); queryable afterwards via"
                        " `obs top` and the sys.statements table")
    p.add_argument("--sample-metrics", metavar="FILE", default=None,
                   help="sample the metrics registry on a background"
                        " thread, appending one JSONL line per sample"
                        " to FILE (implies --metrics registry)")
    p.add_argument("--sample-interval", type=float, default=0.25,
                   metavar="S", help="sampling interval in seconds"
                                     " (default 0.25)")
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser("explain",
                       help="EXPLAIN [ANALYZE] a query against a loaded db")
    p.add_argument("--scale", type=float, default=0.01)
    p.add_argument("--seed", type=int, default=19620718)
    p.add_argument("--template", type=int, default=52,
                   help="query template to explain (default 52)")
    p.add_argument("--stream", type=int, default=0)
    p.add_argument("--sql", default=None,
                   help="explain this SQL instead of a template")
    p.add_argument("--analyze", action="store_true",
                   help="execute the query and annotate the plan with"
                        " per-operator rows / elapsed / counters")
    p.add_argument("--json", action="store_true",
                   help="emit the plan tree as machine-readable JSON"
                        " (plan_to_dict output)")
    p.add_argument("--timeout", type=float, default=None, metavar="S",
                   help="wall-clock timeout for --analyze execution")
    p.add_argument("--mem-budget", default=None, metavar="BYTES",
                   help="memory budget for --analyze execution (spill"
                        " counters appear in the annotated plan)")
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="morsel-parallel workers for --analyze execution"
                        " (workers=/morsels= counters appear per operator)")
    p.set_defaults(func=_cmd_explain)

    def _service_args(p: argparse.ArgumentParser) -> None:
        """Options shared by ``serve`` and ``loadgen``."""
        p.add_argument("--scale", type=float, default=0.002)
        p.add_argument("--seed", type=int, default=19620718)
        p.add_argument("--db", metavar="PATH", default=None,
                       help="open the persistent column store at PATH"
                            " instead of generating")
        p.add_argument("--workers", type=int, default=2, metavar="N",
                       help="service worker threads (default 2)")
        p.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="per-statement end-to-end deadline (queue"
                            " wait included); drives deadline-aware"
                            " shedding")
        p.add_argument("--mem-budget", default=None, metavar="BYTES",
                       help="per-statement memory budget (K/M/G suffix)")
        p.add_argument("--max-concurrent", type=int, default=2,
                       help="per-tenant concurrent statements (default 2)")
        p.add_argument("--queue-depth", type=int, default=8,
                       help="per-tenant admission queue bound (default 8)")
        p.add_argument("--breaker-threshold", type=int, default=5,
                       help="consecutive failures that trip a tenant's"
                            " circuit breaker (default 5)")
        p.add_argument("--breaker-reset", type=float, default=1.0,
                       metavar="S",
                       help="seconds an open breaker waits before"
                            " half-opening (default 1.0)")

    p = sub.add_parser("serve",
                       help="interactive multi-tenant query service")
    _service_args(p)
    p.add_argument("--tenant", default="default",
                   help="tenant the stdin session runs as")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("loadgen",
                       help="open-loop load driver with SLA checking")
    _service_args(p)
    p.add_argument("--phases", default="steady:2:5,burst:8:5,steady:2:5",
                   help="arrival pattern: comma-joined name:qps:secs"
                        " segments, qps 'lo-hi' ramps linearly"
                        " (default steady:2:5,burst:8:5,steady:2:5)")
    p.add_argument("--tenants", default="alpha,beta,gamma,delta",
                   help="comma-separated tenant names (equal weights)")
    p.add_argument("--templates", default="3,7,42,52",
                   help="comma-separated qgen template ids the mix"
                        " draws from (default 3,7,42,52)")
    p.add_argument("--sla-p99", type=float, default=5.0, metavar="S",
                   help="per-tenant p99 end-to-end latency target"
                        " (default 5.0s)")
    p.add_argument("--sla-error-rate", type=float, default=0.0,
                   help="per-tenant ceiling on failed/admitted"
                        " (default 0.0; sheds don't count)")
    p.add_argument("--fault-rate", type=float, default=0.0,
                   help="inject transient faults at this rate into"
                        " --fault-tenant's statements")
    p.add_argument("--fault-tenant", default=None,
                   help="tenant whose statements the faults target")
    p.add_argument("--fault-seed", type=int, default=0)
    p.add_argument("--out", metavar="FILE", default=None,
                   help="write the load report (BENCH_service.json)")
    p.add_argument("--sys-dump", action="store_true",
                   help="after the run, print sys.service as JSON"
                        " (queried through the engine itself)")
    p.set_defaults(func=_cmd_loadgen)

    p = sub.add_parser("obs", help="observability tooling")
    p.add_argument("action",
                   choices=["diff", "history", "top", "trace", "report"],
                   help="'diff' compares the latest two benchmark runs"
                        " in the history file; 'history' summarizes (or,"
                        " with --prune, bounds) the history file; 'top'"
                        " shows a statement store's worst offenders;"
                        " 'trace' exports a Chrome-trace/Perfetto"
                        " timeline; 'report' renders the self-contained"
                        " HTML dashboard")
    p.add_argument("--history", default="benchmarks/results/history.jsonl",
                   help="path to the benchmark history JSONL file")
    p.add_argument("--threshold", type=float, default=0.25,
                   help="relative noise threshold (default 0.25: flag"
                        " regressions slower than 1.25x)")
    p.add_argument("--prune", action="store_true",
                   help="with 'history': drop all but the last --keep"
                        " runs per (git sha, bench module) pair")
    p.add_argument("--keep", type=int, default=3,
                   help="runs to keep per (sha, module) when pruning"
                        " (default 3)")
    p.add_argument("--store", default="benchmarks/results/statements.jsonl",
                   help="statement-store journal for 'top' (written by"
                        " `run --statement-store`)")
    p.add_argument("--by", default="total_elapsed",
                   help="statement-store column to rank 'top' by"
                        " (default total_elapsed; e.g. spilled_bytes,"
                        " mean_elapsed, calls, worst_q_error)")
    p.add_argument("--limit", type=int, default=10,
                   help="rows shown by 'top' (default 10)")
    p.add_argument("--input", metavar="FILE", default=None,
                   help="telemetry bundle from `run --telemetry` to"
                        " render; without it, trace/report measure a"
                        " fresh power run")
    p.add_argument("--out", "--output", dest="out", metavar="FILE",
                   default=None,
                   help="output path (default trace.json /"
                        " obs_report.html); '-' streams the document to"
                        " stdout (progress goes to stderr)")
    p.add_argument("--scale", type=float, default=0.004,
                   help="scale factor for the fresh measuring run")
    p.add_argument("--seed", type=int, default=19620718)
    p.add_argument("--streams", type=int, default=1)
    p.add_argument("--workers", type=int, default=2,
                   help="pool workers for the measuring run (worker"
                        " lanes need >= 2)")
    p.set_defaults(func=_cmd_obs)

    p = sub.add_parser("audit", help="generate, load and audit a database")
    p.add_argument("--scale", type=float, default=0.01)
    p.add_argument("--seed", type=int, default=19620718)
    p.add_argument("--fast", action="store_true", help="skip the FK scan")
    p.set_defaults(func=_cmd_audit)

    p = sub.add_parser("difftest",
                       help="differential correctness vs the SQLite oracle")
    p.add_argument("--scale", type=float, default=0.01)
    p.add_argument("--seed", type=int, default=19620718,
                   help="dsdgen seed for the database under test")
    p.add_argument("--fuzz", type=int, default=200, metavar="N",
                   help="number of fuzzer queries (default 200)")
    p.add_argument("--fuzz-seed", type=int, default=19620718,
                   help="fuzzer seed; rotate it in CI, pin it to replay")
    p.add_argument("--skip-qualification", action="store_true",
                   help="skip the 99 qualification queries")
    p.add_argument("--corpus", default="tests/difftest_corpus",
                   help="directory for shrunk mismatch repros")
    p.add_argument("--query-timeout", type=float, default=30.0,
                   help="wall-clock guard per generated query so a"
                        " pathological fuzz query cannot hang the job"
                        " (default 30s; 0 disables)")
    p.set_defaults(func=_cmd_difftest)

    p = sub.add_parser("schema", help="Table 1 schema statistics")
    p.set_defaults(func=_cmd_schema)

    p = sub.add_parser("scaling", help="Table 2 row counts")
    p.add_argument("--scale", type=float, default=100)
    p.add_argument("--strict", action="store_true")
    p.set_defaults(func=_cmd_scaling)

    return parser


#: exit codes for engine failures: one per processing stage, so shell
#: scripts and CI can tell a bad query from a resource kill
EXIT_PARSE = 2
EXIT_PLANNING = 3
EXIT_EXECUTION = 4
EXIT_RESOURCE = 5


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Engine errors become one-line diagnostics with stage-specific exit
    codes (parse=2, planning=3, execution=4, resource=5) instead of
    tracebacks."""
    from .engine import (
        EngineError,
        PlanningError,
        ResourceError,
        SqlSyntaxError,
        StoreError,
    )
    from .runner import CheckpointMismatch

    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except SqlSyntaxError as exc:
        print(f"tpcds-py: parse error: {exc}", file=sys.stderr)
        return EXIT_PARSE
    except PlanningError as exc:
        print(f"tpcds-py: planning error: {exc}", file=sys.stderr)
        return EXIT_PLANNING
    except StoreError as exc:
        # before EngineError (StoreError is a subclass): a missing or
        # failing column store is an environment/resource problem, not
        # a query-execution one
        print(f"tpcds-py: storage error: {exc}", file=sys.stderr)
        return EXIT_RESOURCE
    except ResourceError as exc:
        # before EngineError: ResourceError is a subclass
        print(f"tpcds-py: resource error: {exc}", file=sys.stderr)
        return EXIT_RESOURCE
    except EngineError as exc:
        print(f"tpcds-py: execution error: {exc}", file=sys.stderr)
        return EXIT_EXECUTION
    except CheckpointMismatch as exc:
        print(f"tpcds-py: checkpoint error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
