"""Multi-process generation (the kit's ``-parallel`` contract).

Work is split into independent tasks: one per dimension table, and one
per (channel, chunk) / inventory chunk for the facts.  Dimension tables
parallelize trivially because every table draws from its own named
random streams; fact chunks rely on the fixed-draws-per-unit stream
discipline of :mod:`repro.dsdgen.facts` — a worker O(log n) jump-aheads
each stream to its chunk offset and generates only its row range.

Every worker rebuilds the :class:`GeneratorContext` from (scale, seed,
strict) and fills the surrogate-key pools from the scaling model
(``ensure_key_pools``), which every dimension generator provably agrees
with, so no cross-worker coordination is needed.  The parent
concatenates fact chunks in order; the result is byte-identical to
serial generation.
"""

from __future__ import annotations

import multiprocessing as mp
import time

from ..obs import get_registry
from .columnar import ColumnarTable
from .context import GeneratorContext
from .dimensions import DIMENSION_ORDER
from .facts import (
    RETURNS_OF,
    generate_channel_chunk,
    generate_inventory_chunk,
    plan_channel,
)
from .generator import FACT_CHANNELS, GeneratedData, _record_throughput

#: per-process state, set up once by the pool initializer
_WORKER_CTX: GeneratorContext | None = None
_PLAN_CACHE: dict = {}


def _init_worker(scale_factor: float, seed: int, strict: bool) -> None:
    global _WORKER_CTX
    _WORKER_CTX = GeneratorContext(scale_factor, seed=seed, strict=strict)
    _WORKER_CTX.ensure_key_pools()
    _PLAN_CACHE.clear()


def _run_task(task: tuple):
    kind = task[0]
    ctx = _WORKER_CTX
    start = time.perf_counter()
    if kind == "dimension":
        name = task[1]
        payload = dict(DIMENSION_ORDER)[name](ctx)
    elif kind == "channel":
        _, table, chunk, n_chunks = task
        plan = _PLAN_CACHE.get(table)
        if plan is None:
            plan = _PLAN_CACHE[table] = plan_channel(ctx, table)
        payload = generate_channel_chunk(ctx, table, chunk, n_chunks, plan=plan)
    else:
        _, chunk, n_chunks = task
        payload = generate_inventory_chunk(ctx, chunk, n_chunks)
    return task, payload, time.perf_counter() - start


def generate_parallel(ctx: GeneratorContext, workers: int) -> GeneratedData:
    """Generate with a pool of ``workers`` processes; byte-identical to
    :meth:`DsdGen.generate` run serially."""
    scaling = ctx.scaling
    tasks: list[tuple] = []
    # fact chunks first — they are the largest tasks, so scheduling them
    # early keeps the pool busy while small dimensions trail
    for table in FACT_CHANNELS:
        for chunk in range(workers):
            tasks.append(("channel", table, chunk, workers))
    for chunk in range(workers):
        tasks.append(("inventory", chunk, workers))
    dims = sorted(DIMENSION_ORDER, key=lambda kv: -scaling.rows(kv[0]))
    tasks.extend(("dimension", name) for name, _ in dims)

    mp_ctx = mp.get_context("fork" if "fork" in mp.get_all_start_methods() else None)
    with mp_ctx.Pool(
        processes=workers,
        initializer=_init_worker,
        initargs=(scaling.scale_factor, ctx.seed, scaling.strict),
    ) as pool:
        results = pool.map(_run_task, tasks, chunksize=1)

    dim_payloads: dict[str, object] = {}
    chunk_parts: dict[str, list] = {t: [None] * workers for t in FACT_CHANNELS}
    return_parts: dict[str, list] = {t: [None] * workers for t in FACT_CHANNELS}
    inventory_parts: list = [None] * workers
    timings: dict[str, float] = {}
    registry = get_registry()
    for task, payload, elapsed in results:
        if task[0] == "dimension":
            dim_payloads[task[1]] = payload
            timings[task[1]] = elapsed
        elif task[0] == "channel":
            _, table, chunk, _n = task
            sales, returns = payload
            chunk_parts[table][chunk] = sales
            return_parts[table][chunk] = returns
            timings[table] = timings.get(table, 0.0) + elapsed
            if registry.enabled:
                registry.histogram(
                    "dsdgen.chunk_seconds", labels={"table": table}
                ).observe(elapsed)
        else:
            _, chunk, _n = task
            inventory_parts[chunk] = payload
            timings["inventory"] = timings.get("inventory", 0.0) + elapsed
            if registry.enabled:
                registry.histogram(
                    "dsdgen.chunk_seconds", labels={"table": "inventory"}
                ).observe(elapsed)

    ctx.ensure_key_pools()
    data = GeneratedData(ctx)
    for name, _generator in DIMENSION_ORDER:
        data.add(name, dim_payloads[name])
    for table in FACT_CHANNELS:
        data.add(table, ColumnarTable.concat(chunk_parts[table]))
        data.add(RETURNS_OF[table], ColumnarTable.concat(return_parts[table]))
        timings.setdefault(RETURNS_OF[table], 0.0)
    data.add("inventory", ColumnarTable.concat(inventory_parts))
    data.timings = timings
    _record_throughput(data)
    return data
