"""The dsdgen orchestrator.

``DsdGen(scale_factor).generate()`` produces every table (dimensions in
dependency order, then facts), deterministically for a given seed.
``build_database`` loads the result into a fresh engine
:class:`Database`, which is what the benchmark runner's *load test*
times (§5.2: create tables, load data, create auxiliary structures,
gather statistics).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from ..engine import Database
from ..schema import ALL_TABLES
from .context import GeneratorContext
from .dimensions import DIMENSION_ORDER
from .facts import gen_catalog_sales, gen_inventory, gen_store_sales, gen_web_sales
from .flatfile import dat_path, read_flat_file, write_flat_file


@dataclass
class GeneratedData:
    """All generated rows plus the context that produced them."""

    context: GeneratorContext
    tables: dict[str, list[tuple]] = field(default_factory=dict)

    @property
    def row_counts(self) -> dict[str, int]:
        return {name: len(rows) for name, rows in self.tables.items()}

    def write_flat_files(self, directory: str) -> dict[str, int]:
        """Write every table as <name>.dat; returns bytes per table."""
        os.makedirs(directory, exist_ok=True)
        sizes = {}
        for name, rows in self.tables.items():
            sizes[name] = write_flat_file(
                dat_path(directory, name), rows, ALL_TABLES[name]
            )
        return sizes


class DsdGen:
    """The data generator, configured for one scale factor and seed."""

    def __init__(self, scale_factor: float, seed: int = 19620718, strict: bool = False):
        self.context = GeneratorContext(scale_factor, seed=seed, strict=strict)

    def generate(self) -> GeneratedData:
        data = GeneratedData(self.context)
        for name, generator in DIMENSION_ORDER:
            data.tables[name] = generator(self.context)
        sales, returns = gen_store_sales(self.context)
        data.tables["store_sales"] = sales
        data.tables["store_returns"] = returns
        sales, returns = gen_catalog_sales(self.context)
        data.tables["catalog_sales"] = sales
        data.tables["catalog_returns"] = returns
        sales, returns = gen_web_sales(self.context)
        data.tables["web_sales"] = sales
        data.tables["web_returns"] = returns
        data.tables["inventory"] = gen_inventory(self.context)
        return data


def load_tables(db: Database, data: GeneratedData) -> None:
    """Create every schema table and load the generated rows."""
    for name, schema in ALL_TABLES.items():
        if not db.catalog.has_table(name):
            db.create_table(schema)
        db.table(name).append_rows(data.tables.get(name, []))


def load_from_flat_files(db: Database, directory: str) -> None:
    """Create the schema tables and load them from .dat files."""
    for name, schema in ALL_TABLES.items():
        if not db.catalog.has_table(name):
            db.create_table(schema)
        path = dat_path(directory, name)
        if os.path.exists(path):
            db.table(name).append_rows(read_flat_file(path, schema))


def build_database(
    scale_factor: float,
    seed: int = 19620718,
    data: Optional[GeneratedData] = None,
    gather_stats: bool = True,
) -> tuple[Database, GeneratedData]:
    """Generate (or reuse) data and load it into a fresh database."""
    if data is None:
        data = DsdGen(scale_factor, seed=seed).generate()
    db = Database()
    load_tables(db, data)
    if gather_stats:
        db.gather_stats()
    return db, data
