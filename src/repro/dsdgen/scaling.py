"""The TPC-DS scaling model (§3.1, Table 2).

Two regimes:

* **fact tables scale linearly** with the scale factor (each scale
  factor is the raw data size in GB);
* **dimensions scale sub-linearly**, anchored at the published row
  counts for the official scale factors and interpolated with a
  power law (log-log straight line) in between.

``ROW_COUNT_ANCHORS`` pins the official scale factors; the values for
store_sales, store_returns, store, customer and item are the paper's
Table 2 verbatim, the rest follow the public TPC-DS draft. ``rows()``
therefore reproduces Table 2 exactly by construction and degrades
smoothly for the fractional *model* scale factors (sf < 1) we use to
run the benchmark at laptop size; static in-memory caps keep the fixed
dimensions (date_dim, time_dim, customer_demographics) proportionate
in model mode.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: official TPC-DS scale factors (GB of raw data); anything else is only
#: legal as a "model" scale factor with strict=False
OFFICIAL_SCALE_FACTORS = (100, 300, 1000, 3000, 10000, 30000, 100000)

_K = 1_000
_M = 1_000_000
_B = 1_000_000_000

#: rows at the anchor scale factors 100 / 1000 / 10000 / 100000
ROW_COUNT_ANCHORS: dict[str, tuple[int, int, int, int]] = {
    # paper Table 2, verbatim
    "store_sales": (288 * _M, 2_900 * _M, 30 * _B, 297 * _B),
    "store_returns": (14 * _M, 147 * _M, 1_500 * _M, 15 * _B),
    "store": (200, 500, 750, 1_500),
    "customer": (2 * _M, 8 * _M, 20 * _M, 100 * _M),
    "item": (200 * _K, 300 * _K, 400 * _K, 500 * _K),
    # remaining tables, following the public draft's proportions
    "catalog_sales": (144 * _M, 1_440 * _M, 14_400 * _M, 144 * _B),
    "catalog_returns": (14 * _M, 144 * _M, 1_440 * _M, 14_400 * _M),
    "web_sales": (72 * _M, 720 * _M, 7_200 * _M, 72 * _B),
    "web_returns": (7 * _M, 72 * _M, 720 * _M, 7_200 * _M),
    "inventory": (399 * _M, 783 * _M, 1_311 * _M, 1_627 * _M),
    "customer_address": (1 * _M, 4 * _M, 10 * _M, 50 * _M),
    "customer_demographics": (1_920_800, 1_920_800, 1_920_800, 1_920_800),
    "household_demographics": (7_200, 7_200, 7_200, 7_200),
    "income_band": (20, 20, 20, 20),
    "date_dim": (73_049, 73_049, 73_049, 73_049),
    "time_dim": (86_400, 86_400, 86_400, 86_400),
    "reason": (55, 65, 70, 75),
    "ship_mode": (20, 20, 20, 20),
    "call_center": (30, 42, 54, 60),
    "catalog_page": (20_400, 30_000, 40_000, 50_000),
    "web_site": (24, 54, 78, 96),
    "web_page": (2_040, 3_000, 4_002, 5_004),
    "warehouse": (15, 20, 25, 30),
    "promotion": (1_000, 1_500, 2_000, 2_500),
}

_ANCHOR_SFS = (100, 1_000, 10_000, 100_000)

FACT_TABLE_NAMES = frozenset(
    {
        "store_sales",
        "store_returns",
        "catalog_sales",
        "catalog_returns",
        "web_sales",
        "web_returns",
        "inventory",
    }
)

#: tables whose cardinality never depends on the scale factor
FIXED_TABLES = frozenset(
    {
        "customer_demographics",
        "household_demographics",
        "income_band",
        "date_dim",
        "time_dim",
        "ship_mode",
    }
)

#: caps applied in model mode (sf < 1) so fixed-size dimensions stay
#: proportionate to the shrunken facts
_MODEL_CAPS = {
    "date_dim": 1_827,  # 5 calendar years
    "time_dim": 1_440,  # minute granularity instead of seconds
    "customer_demographics": 1_920,
    "household_demographics": 720,
    # the item power law decays slowly; uncapped it would exceed the model
    # fact tables, so model runs bound it (documented deviation)
    "item": 5_000,
    "catalog_page": 2_000,
}


class ScaleFactorError(ValueError):
    """Raised for scale factors outside the specification in strict mode."""


@dataclass(frozen=True)
class ScalingModel:
    """Row-count model for one scale factor.

    ``strict=True`` enforces the specification's discrete scale factors
    ("benchmark publications using other scale factors are not valid");
    ``strict=False`` additionally admits fractional model scale factors
    for laptop-size runs.
    """

    scale_factor: float
    strict: bool = False

    def __post_init__(self) -> None:
        if self.scale_factor <= 0:
            raise ScaleFactorError(f"scale factor must be positive: {self.scale_factor}")
        if self.strict and self.scale_factor not in OFFICIAL_SCALE_FACTORS:
            raise ScaleFactorError(
                f"scale factor {self.scale_factor} is not one of the official "
                f"TPC-DS scale factors {OFFICIAL_SCALE_FACTORS}"
            )

    @property
    def is_model_scale(self) -> bool:
        return self.scale_factor < OFFICIAL_SCALE_FACTORS[0]

    def rows(self, table: str) -> int:
        """Row count for ``table`` at this scale factor."""
        anchors = ROW_COUNT_ANCHORS.get(table)
        if anchors is None:
            raise KeyError(f"no scaling anchors for table {table!r}")
        sf = self.scale_factor
        if table == "inventory" and self.is_model_scale:
            # inventory's shallow power law would dwarf the model facts;
            # model runs scale it linearly from the 100 GB anchor
            return max(1, round(anchors[0] * sf / 100.0))
        if table in FACT_TABLE_NAMES and table != "inventory":
            # facts are linear in SF; the 100 GB anchor defines rows/GB,
            # but published anchor values win exactly at anchor points
            exact = self._exact_anchor(table, sf)
            if exact is not None:
                return exact
            return max(1, round(anchors[0] * sf / 100.0))
        exact = self._exact_anchor(table, sf)
        if exact is not None:
            return exact
        rows = self._power_law(anchors, sf)
        if self.is_model_scale:
            cap = _MODEL_CAPS.get(table)
            if cap is not None:
                rows = min(rows, cap)
            if table in ("date_dim",):
                rows = max(rows, 366)
            rows = max(rows, 1)
        if table in FIXED_TABLES and not self.is_model_scale:
            rows = anchors[0]
        return int(rows)

    @staticmethod
    def _exact_anchor(table: str, sf: float):
        anchors = ROW_COUNT_ANCHORS[table]
        if sf in _ANCHOR_SFS:
            return anchors[_ANCHOR_SFS.index(sf)]
        return None

    @staticmethod
    def _power_law(anchors: tuple[int, int, int, int], sf: float) -> int:
        """Log-log interpolation through the anchor points (clamped to the
        end segments outside [100, 100000])."""
        xs = _ANCHOR_SFS
        ys = anchors
        if ys[0] == ys[-1]:
            return ys[0]
        # find the surrounding segment
        if sf <= xs[0]:
            i = 0
        elif sf >= xs[-1]:
            i = len(xs) - 2
        else:
            i = max(j for j in range(len(xs) - 1) if xs[j] <= sf)
        x0, x1 = xs[i], xs[i + 1]
        y0, y1 = ys[i], ys[i + 1]
        if y0 == y1:
            return y0
        alpha = math.log(y1 / y0) / math.log(x1 / x0)
        value = y0 * (sf / x0) ** alpha
        return max(1, round(value))

    def table_rows(self) -> dict[str, int]:
        """Row counts for every table at this scale factor."""
        return {name: self.rows(name) for name in ROW_COUNT_ANCHORS}

    def raw_data_gb(self) -> float:
        """The nominal raw data size this scale factor represents."""
        return float(self.scale_factor)


def minimum_streams(scale_factor: float) -> int:
    """Figure 12: the minimum number of concurrent query streams.

    The mapping is 100→3, 300→5, 1000→7, 3000→9, 10000→11, 30000→13,
    100000→15; model scale factors below 100 use the smallest value.
    """
    table = {100: 3, 300: 5, 1000: 7, 3000: 9, 10000: 11, 30000: 13, 100000: 15}
    if scale_factor in table:
        return table[scale_factor]
    if scale_factor < 100:
        return 3
    # between official points, the requirement of the next lower point applies
    eligible = [sf for sf in table if sf <= scale_factor]
    return table[max(eligible)]
