"""Fact-table generators.

Sales facts are generated transaction-first: a basket (store ticket /
catalog order / web order) draws a zoned sales date, a customer context
and a set of items; every item line becomes one fact row ("each row in
the sales fact table represents the purchase of one item", §3.1).
Returns are derived from sales lines so the ticket/order + item
fact-to-fact relationship the paper highlights (§2.2) actually joins.

Pricing follows the dsdgen arithmetic chain: wholesale cost → list
price (markup) → sales price (discount) → extended amounts → tax,
coupon, net paid, net profit.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import distributions as D
from .context import GeneratorContext
from .rng import RandomStream

#: average basket size ~10.5 items (§3.1: "on average each shopping
#: cart contains 10.5 items") — uniform 1..20
_BASKET_MIN, _BASKET_MAX = 1, 20


@dataclass
class Pricing:
    quantity: int
    wholesale_cost: float
    list_price: float
    sales_price: float
    ext_discount_amt: float
    ext_sales_price: float
    ext_wholesale_cost: float
    ext_list_price: float
    ext_tax: float
    coupon_amt: float
    net_paid: float
    net_paid_inc_tax: float
    net_profit: float


def make_pricing(rng: RandomStream) -> Pricing:
    """One fact line's pricing chain (dsdgen arithmetic)."""
    quantity = rng.uniform_int(1, 100)
    wholesale = round(1 + rng.uniform() * 99, 2)
    list_price = round(wholesale * (1 + rng.uniform()), 2)
    discount = round(rng.uniform() * 0.5, 2)
    sales_price = round(list_price * (1 - discount), 2)
    ext_list = round(list_price * quantity, 2)
    ext_sales = round(sales_price * quantity, 2)
    ext_wholesale = round(wholesale * quantity, 2)
    ext_discount = round(ext_list - ext_sales, 2)
    tax_rate = rng.uniform_int(0, 9) / 100.0
    coupon = round(ext_sales * rng.uniform() * 0.1, 2) if rng.uniform() < 0.2 else 0.0
    net_paid = round(ext_sales - coupon, 2)
    ext_tax = round(net_paid * tax_rate, 2)
    return Pricing(
        quantity=quantity,
        wholesale_cost=wholesale,
        list_price=list_price,
        sales_price=sales_price,
        ext_discount_amt=ext_discount,
        ext_sales_price=ext_sales,
        ext_wholesale_cost=ext_wholesale,
        ext_list_price=ext_list,
        ext_tax=ext_tax,
        coupon_amt=coupon,
        net_paid=net_paid,
        net_paid_inc_tax=round(net_paid + ext_tax, 2),
        net_profit=round(net_paid - ext_wholesale, 2),
    )


def _return_pricing(rng: RandomStream, sold: Pricing) -> dict:
    quantity = rng.uniform_int(1, sold.quantity)
    fraction = quantity / sold.quantity
    amount = round(sold.net_paid * fraction, 2)
    tax = round(sold.ext_tax * fraction, 2)
    fee = round(1 + rng.uniform() * 99, 2)
    ship = round(sold.ext_wholesale_cost * fraction * 0.5, 2)
    refunded = round(amount * rng.uniform(), 2)
    reversed_charge = round(amount - refunded, 2)
    return {
        "quantity": quantity,
        "amount": amount,
        "tax": tax,
        "amount_inc_tax": round(amount + tax, 2),
        "fee": fee,
        "ship": ship,
        "refunded": refunded,
        "reversed": reversed_charge,
        "credit": 0.0,
        "net_loss": round(ship + fee + tax + reversed_charge * 0.1, 2),
    }


def _distinct_item(ctx: GeneratorContext, rng: RandomStream, taken: set[int]) -> int:
    """An item key not yet in this basket — order lines are distinct per
    (ticket/order, item), which the sales-to-returns join relies on."""
    pool = max(ctx.key_pools.get("item", 1), 1)
    item = ctx.sample_fk("item", rng)
    while item in taken and len(taken) < pool:
        item = item % pool + 1  # linear probe; pool >> basket size
    taken.add(item)
    return item


def gen_store_sales(ctx: GeneratorContext) -> tuple[list[tuple], list[tuple]]:
    """Returns (store_sales rows, store_returns rows)."""
    target_sales = ctx.rows("store_sales")
    target_returns = ctx.rows("store_returns")
    return_prob = min(1.0, target_returns / max(target_sales, 1))
    rng = ctx.stream("store_sales", "body")
    sales: list[tuple] = []
    returns: list[tuple] = []
    ticket = 0
    while len(sales) < target_sales:
        ticket += 1
        date_sk = ctx.sales_date_sk(rng)
        time_sk = ctx.sample_fk("time_dim", rng, 0.02)
        customer = ctx.sample_fk("customer", rng, 0.03)
        cdemo = ctx.sample_fk("customer_demographics", rng, 0.03)
        hdemo = ctx.sample_fk("household_demographics", rng, 0.03)
        addr = ctx.sample_fk("customer_address", rng, 0.03)
        store = ctx.sample_fk("store", rng, 0.02)
        basket = rng.uniform_int(_BASKET_MIN, _BASKET_MAX)
        basket_items: set[int] = set()
        for _ in range(basket):
            if len(sales) >= target_sales:
                break
            item = _distinct_item(ctx, rng, basket_items)
            promo = ctx.sample_fk("promotion", rng, 0.3)
            p = make_pricing(rng)
            sales.append((
                date_sk, time_sk, item, customer, cdemo, hdemo, addr, store,
                promo, ticket, p.quantity, p.wholesale_cost, p.list_price,
                p.sales_price, p.ext_discount_amt, p.ext_sales_price,
                p.ext_wholesale_cost, p.ext_list_price, p.ext_tax,
                p.coupon_amt, p.net_paid, p.net_paid_inc_tax, p.net_profit,
            ))
            if len(returns) < target_returns and rng.uniform() < return_prob:
                r = _return_pricing(rng, p)
                returns.append((
                    ctx.clamp_date_sk(date_sk + rng.uniform_int(1, 90)),
                    ctx.sample_fk("time_dim", rng, 0.02),
                    item, customer, cdemo, hdemo, addr, store,
                    ctx.sample_fk("reason", rng),
                    ticket,
                    r["quantity"], r["amount"], r["tax"], r["amount_inc_tax"],
                    r["fee"], r["ship"], r["refunded"], r["reversed"],
                    r["credit"], r["net_loss"],
                ))
    return sales, returns


def _catalog_like_sales(
    ctx: GeneratorContext,
    rng: RandomStream,
    target_sales: int,
    target_returns: int,
    channel: str,
) -> tuple[list[tuple], list[tuple]]:
    """Shared body for catalog_sales and web_sales (they differ only in
    the channel-specific FK block)."""
    return_prob = min(1.0, target_returns / max(target_sales, 1))
    sales: list[tuple] = []
    returns: list[tuple] = []
    order = 0
    while len(sales) < target_sales:
        order += 1
        date_sk = ctx.sales_date_sk(rng)
        time_sk = ctx.sample_fk("time_dim", rng, 0.02)
        bill_customer = ctx.sample_fk("customer", rng, 0.02)
        bill_cdemo = ctx.sample_fk("customer_demographics", rng, 0.02)
        bill_hdemo = ctx.sample_fk("household_demographics", rng, 0.02)
        bill_addr = ctx.sample_fk("customer_address", rng, 0.02)
        # ~85% of orders ship to the billing customer
        if rng.uniform() < 0.85 and bill_customer is not None:
            ship = (bill_customer, bill_cdemo, bill_hdemo, bill_addr)
        else:
            ship = (
                ctx.sample_fk("customer", rng, 0.02),
                ctx.sample_fk("customer_demographics", rng, 0.02),
                ctx.sample_fk("household_demographics", rng, 0.02),
                ctx.sample_fk("customer_address", rng, 0.02),
            )
        if channel == "catalog":
            channel_fks = (
                ctx.sample_fk("call_center", rng, 0.02),
                ctx.sample_fk("catalog_page", rng, 0.02),
            )
        else:
            channel_fks = (
                ctx.sample_fk("web_page", rng, 0.02),
                ctx.sample_fk("web_site", rng, 0.02),
            )
        ship_mode = ctx.sample_fk("ship_mode", rng, 0.02)
        warehouse = ctx.sample_fk("warehouse", rng, 0.02)
        basket = rng.uniform_int(_BASKET_MIN, _BASKET_MAX)
        basket_items: set[int] = set()
        for _ in range(basket):
            if len(sales) >= target_sales:
                break
            item = _distinct_item(ctx, rng, basket_items)
            promo = ctx.sample_fk("promotion", rng, 0.3)
            ship_date = ctx.clamp_date_sk(date_sk + rng.uniform_int(2, 120))
            p = make_pricing(rng)
            ship_cost = round(p.ext_wholesale_cost * rng.uniform() * 0.5, 2)
            if channel == "catalog":
                row = (
                    date_sk, time_sk, ship_date,
                    bill_customer, bill_cdemo, bill_hdemo, bill_addr,
                    *ship, *channel_fks, ship_mode, warehouse, item, promo,
                    order, p.quantity, p.wholesale_cost, p.list_price,
                    p.sales_price, p.ext_discount_amt, p.ext_sales_price,
                    p.ext_wholesale_cost, p.ext_list_price, p.ext_tax,
                    p.coupon_amt, ship_cost, p.net_paid, p.net_paid_inc_tax,
                    round(p.net_paid + ship_cost, 2),
                    round(p.net_paid_inc_tax + ship_cost, 2),
                    p.net_profit,
                )
            else:
                row = (
                    date_sk, time_sk, ship_date, item,
                    bill_customer, bill_cdemo, bill_hdemo, bill_addr,
                    *ship, *channel_fks, ship_mode, warehouse, promo,
                    order, p.quantity, p.wholesale_cost, p.list_price,
                    p.sales_price, p.ext_discount_amt, p.ext_sales_price,
                    p.ext_wholesale_cost, p.ext_list_price, p.ext_tax,
                    p.coupon_amt, ship_cost, p.net_paid, p.net_paid_inc_tax,
                    round(p.net_paid + ship_cost, 2),
                    round(p.net_paid_inc_tax + ship_cost, 2),
                    p.net_profit,
                )
            sales.append(row)
            if len(returns) < target_returns and rng.uniform() < return_prob:
                r = _return_pricing(rng, p)
                if channel == "catalog":
                    returns.append((
                        ctx.clamp_date_sk(date_sk + rng.uniform_int(1, 90)),
                        ctx.sample_fk("time_dim", rng, 0.02),
                        item,
                        bill_customer, bill_cdemo, bill_hdemo, bill_addr,
                        *ship, *channel_fks, ship_mode, warehouse,
                        ctx.sample_fk("reason", rng),
                        order,
                        r["quantity"], r["amount"], r["tax"],
                        r["amount_inc_tax"], r["fee"], r["ship"],
                        r["refunded"], r["reversed"], r["credit"],
                        r["net_loss"],
                    ))
                else:
                    returns.append((
                        ctx.clamp_date_sk(date_sk + rng.uniform_int(1, 90)),
                        ctx.sample_fk("time_dim", rng, 0.02),
                        item,
                        bill_customer, bill_cdemo, bill_hdemo, bill_addr,
                        *ship, channel_fks[0],
                        ctx.sample_fk("reason", rng),
                        order,
                        r["quantity"], r["amount"], r["tax"],
                        r["amount_inc_tax"], r["fee"], r["ship"],
                        r["refunded"], r["reversed"], r["credit"],
                        r["net_loss"],
                    ))
    return sales, returns


def gen_catalog_sales(ctx: GeneratorContext) -> tuple[list[tuple], list[tuple]]:
    """Catalog channel: (catalog_sales rows, catalog_returns rows)."""
    return _catalog_like_sales(
        ctx,
        ctx.stream("catalog_sales", "body"),
        ctx.rows("catalog_sales"),
        ctx.rows("catalog_returns"),
        "catalog",
    )


def gen_web_sales(ctx: GeneratorContext) -> tuple[list[tuple], list[tuple]]:
    """Web channel: (web_sales rows, web_returns rows)."""
    return _catalog_like_sales(
        ctx,
        ctx.stream("web_sales", "body"),
        ctx.rows("web_sales"),
        ctx.rows("web_returns"),
        "web",
    )


def gen_inventory(ctx: GeneratorContext) -> list[tuple]:
    """Weekly warehouse inventory snapshots (shared by the catalog and
    web channels). Snapshot weeks × an item stride × warehouses fill the
    row budget."""
    target = ctx.rows("inventory")
    rng = ctx.stream("inventory", "body")
    n_items = max(ctx.key_pools.get("item", 1), 1)
    n_wh = max(ctx.key_pools.get("warehouse", 1), 1)
    n_days = ctx.rows("date_dim")
    n_weeks = max(1, min(n_days // 7, 52))
    per_week = max(1, target // (n_weeks * n_wh))
    stride = max(1, n_items // per_week)
    rows: list[tuple] = []
    for week in range(n_weeks):
        date_sk = ctx.calendar.sk_at(min(week * 7, n_days - 1))
        for item in range(1, n_items + 1, stride):
            for wh in range(1, n_wh + 1):
                if len(rows) >= target:
                    return rows
                quantity = rng.maybe_null(rng.uniform_int(0, 1000), 0.02)
                rows.append((date_sk, item, wh, quantity))
    return rows
