"""Fact-table generators (vectorized, chunkable).

Sales facts are generated transaction-first: a basket (store ticket /
catalog order / web order) draws a zoned sales date, a customer context
and a set of items; every item line becomes one fact row ("each row in
the sales fact table represents the purchase of one item", §3.1).
Returns are derived from sales lines so the ticket/order + item
fact-to-fact relationship the paper highlights (§2.2) actually joins.

Pricing follows the dsdgen arithmetic chain: wholesale cost → list
price (markup) → sales price (discount) → extended amounts → tax,
coupon, net paid, net profit.

The generators are numpy kernels over batch draws with a *fixed number
of raw draws per unit* — the property that makes the kit's
``-parallel``/``-child`` contract possible.  Each channel uses five
streams with fixed per-unit draw counts:

========================  =======================  ================
stream                    unit                     draws per unit
========================  =======================  ================
``(T, "basket")``         ticket/order             1 (basket size)
``(T, "header")``         ticket/order             15 store / 30 catalog+web
``(T, "line")``           fact line                10 store / 12 catalog+web
``(T, "retdec")``         fact line                1 (return decision)
``(T, "retbody")``        accepted return          7
``("inventory","body")``  inventory row            2
========================  =======================  ================

A worker generating tickets ``[t0, t1)`` positions each stream with an
O(log n) :meth:`~repro.dsdgen.rng.RandomStream.jump` to its absolute
offset (``15*t0`` for the store header, ``10*line_start[t0]`` for
lines, ...) and produces exactly the rows the serial generator would —
chunks concatenate to the byte-identical serial result.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..schema import ALL_TABLES
from .columnar import ColumnarTable
from .context import GeneratorContext
from .rng import RandomStream, ints_from_raw, uniforms_from_raw

#: average basket size ~10.5 items (§3.1: "on average each shopping
#: cart contains 10.5 items") — uniform 1..20
_BASKET_MIN, _BASKET_MAX = 1, 20

#: returns table per sales channel
RETURNS_OF = {
    "store_sales": "store_returns",
    "catalog_sales": "catalog_returns",
    "web_sales": "web_returns",
}

#: fixed draw counts per unit (the jump-ahead contract)
HEADER_DRAWS = {"store_sales": 15, "catalog_sales": 30, "web_sales": 30}
LINE_DRAWS = {"store_sales": 10, "catalog_sales": 12, "web_sales": 12}
RETURN_DRAWS = 7
INVENTORY_ROW_DRAWS = 2

#: (fk table, null fraction) pairs drawn in the store ticket header,
#: two raws each (null decision, value), after the 3 date draws
_STORE_HEADER_FKS = (
    ("time_dim", 0.02),
    ("customer", 0.03),
    ("customer_demographics", 0.03),
    ("household_demographics", 0.03),
    ("customer_address", 0.03),
    ("store", 0.02),
)

#: the billing/shipping customer-context block of catalog/web orders
_CUSTOMER_BLOCK = (
    ("customer", 0.02),
    ("customer_demographics", 0.02),
    ("household_demographics", 0.02),
    ("customer_address", 0.02),
)

_CHANNEL_FKS = {
    "catalog_sales": (("call_center", 0.02), ("catalog_page", 0.02)),
    "web_sales": (("web_page", 0.02), ("web_site", 0.02)),
}


def _r2(a: np.ndarray) -> np.ndarray:
    """Round-half-even to cents, the dsdgen money rounding."""
    return np.round(a, 2)


# ---------------------------------------------------------------------------
# scalar pricing helpers (kept for the maintenance/refresh row generators)
# ---------------------------------------------------------------------------


@dataclass
class Pricing:
    quantity: int
    wholesale_cost: float
    list_price: float
    sales_price: float
    ext_discount_amt: float
    ext_sales_price: float
    ext_wholesale_cost: float
    ext_list_price: float
    ext_tax: float
    coupon_amt: float
    net_paid: float
    net_paid_inc_tax: float
    net_profit: float


def make_pricing(rng: RandomStream) -> Pricing:
    """One fact line's pricing chain (dsdgen arithmetic)."""
    quantity = rng.uniform_int(1, 100)
    wholesale = round(1 + rng.uniform() * 99, 2)
    list_price = round(wholesale * (1 + rng.uniform()), 2)
    discount = round(rng.uniform() * 0.5, 2)
    sales_price = round(list_price * (1 - discount), 2)
    ext_list = round(list_price * quantity, 2)
    ext_sales = round(sales_price * quantity, 2)
    ext_wholesale = round(wholesale * quantity, 2)
    ext_discount = round(ext_list - ext_sales, 2)
    tax_rate = rng.uniform_int(0, 9) / 100.0
    coupon = round(ext_sales * rng.uniform() * 0.1, 2) if rng.uniform() < 0.2 else 0.0
    net_paid = round(ext_sales - coupon, 2)
    ext_tax = round(net_paid * tax_rate, 2)
    return Pricing(
        quantity=quantity,
        wholesale_cost=wholesale,
        list_price=list_price,
        sales_price=sales_price,
        ext_discount_amt=ext_discount,
        ext_sales_price=ext_sales,
        ext_wholesale_cost=ext_wholesale,
        ext_list_price=ext_list,
        ext_tax=ext_tax,
        coupon_amt=coupon,
        net_paid=net_paid,
        net_paid_inc_tax=round(net_paid + ext_tax, 2),
        net_profit=round(net_paid - ext_wholesale, 2),
    )


def _return_pricing(rng: RandomStream, sold: Pricing) -> dict:
    quantity = rng.uniform_int(1, sold.quantity)
    fraction = quantity / sold.quantity
    amount = round(sold.net_paid * fraction, 2)
    tax = round(sold.ext_tax * fraction, 2)
    fee = round(1 + rng.uniform() * 99, 2)
    ship = round(sold.ext_wholesale_cost * fraction * 0.5, 2)
    refunded = round(amount * rng.uniform(), 2)
    reversed_charge = round(amount - refunded, 2)
    return {
        "quantity": quantity,
        "amount": amount,
        "tax": tax,
        "amount_inc_tax": round(amount + tax, 2),
        "fee": fee,
        "ship": ship,
        "refunded": refunded,
        "reversed": reversed_charge,
        "credit": 0.0,
        "net_loss": round(ship + fee + tax + reversed_charge * 0.1, 2),
    }


# ---------------------------------------------------------------------------
# vectorized pricing kernels
# ---------------------------------------------------------------------------


def _pricing_from_raw(raw: np.ndarray) -> dict[str, np.ndarray]:
    """The pricing chain over a ``(n, 7)`` raw block.

    Column layout (the scalar draw order of :func:`make_pricing`, with
    the coupon fraction always drawn so the count stays fixed):
    ``[quantity, wholesale_u, list_u, discount_u, tax_raw, coupon_flag_u,
    coupon_u]``.
    """
    quantity = ints_from_raw(raw[:, 0], 1, 100)
    wholesale = _r2(1 + uniforms_from_raw(raw[:, 1]) * 99)
    list_price = _r2(wholesale * (1 + uniforms_from_raw(raw[:, 2])))
    discount = _r2(uniforms_from_raw(raw[:, 3]) * 0.5)
    sales_price = _r2(list_price * (1 - discount))
    ext_list = _r2(list_price * quantity)
    ext_sales = _r2(sales_price * quantity)
    ext_wholesale = _r2(wholesale * quantity)
    ext_discount = _r2(ext_list - ext_sales)
    tax_rate = ints_from_raw(raw[:, 4], 0, 9) / 100.0
    has_coupon = uniforms_from_raw(raw[:, 5]) < 0.2
    coupon = np.where(
        has_coupon, _r2(ext_sales * uniforms_from_raw(raw[:, 6]) * 0.1), 0.0
    )
    net_paid = _r2(ext_sales - coupon)
    ext_tax = _r2(net_paid * tax_rate)
    return {
        "quantity": quantity,
        "wholesale_cost": wholesale,
        "list_price": list_price,
        "sales_price": sales_price,
        "ext_discount_amt": ext_discount,
        "ext_sales_price": ext_sales,
        "ext_wholesale_cost": ext_wholesale,
        "ext_list_price": ext_list,
        "ext_tax": ext_tax,
        "coupon_amt": coupon,
        "net_paid": net_paid,
        "net_paid_inc_tax": _r2(net_paid + ext_tax),
        "net_profit": _r2(net_paid - ext_wholesale),
    }


def _return_pricing_from_raw(
    raw: np.ndarray, sold: dict[str, np.ndarray], taken: np.ndarray
) -> dict[str, np.ndarray]:
    """Return pricing over a ``(n, 3)`` raw block ``[quantity, fee_u,
    refunded_u]`` against the taken sales lines' pricing columns."""
    sold_qty = sold["quantity"][taken]
    quantity = 1 + (raw[:, 0] % sold_qty.astype(np.uint64)).astype(np.int64)
    fraction = quantity / sold_qty
    amount = _r2(sold["net_paid"][taken] * fraction)
    tax = _r2(sold["ext_tax"][taken] * fraction)
    fee = _r2(1 + uniforms_from_raw(raw[:, 1]) * 99)
    ship = _r2(sold["ext_wholesale_cost"][taken] * fraction * 0.5)
    refunded = _r2(amount * uniforms_from_raw(raw[:, 2]))
    reversed_charge = _r2(amount - refunded)
    return {
        "quantity": quantity,
        "amount": amount,
        "tax": tax,
        "amount_inc_tax": _r2(amount + tax),
        "fee": fee,
        "ship": ship,
        "refunded": refunded,
        "reversed": reversed_charge,
        "credit": np.zeros(len(raw)),
        "net_loss": _r2(ship + fee + tax + reversed_charge * 0.1),
    }


# ---------------------------------------------------------------------------
# channel planning (deterministic, cheap — recomputed by every worker)
# ---------------------------------------------------------------------------


@dataclass
class ChannelPlan:
    """The ticket/line layout of one sales channel: how many lines each
    ticket has, and which lines become returns.  Derived from the
    ``basket`` and ``retdec`` streams only, so every worker recomputes
    it identically in milliseconds."""

    table: str
    target_sales: int
    target_returns: int
    return_prob: float
    #: lines per ticket; truncated so it sums to exactly target_sales
    basket: np.ndarray
    #: exclusive prefix sum of basket, length num_tickets + 1
    line_start: np.ndarray
    #: per-line return-take mask (decision capped at target_returns)
    take: np.ndarray

    @property
    def num_tickets(self) -> int:
        return len(self.basket)

    def ticket_range(self, chunk: int, n_chunks: int) -> tuple[int, int]:
        """Ticket bounds of one chunk, balanced by *line* count so fact
        rows split evenly regardless of basket-size variance."""
        total = int(self.line_start[-1])
        lo = int(np.searchsorted(self.line_start, total * chunk // n_chunks))
        hi = int(np.searchsorted(self.line_start, total * (chunk + 1) // n_chunks))
        return lo, hi


def plan_channel(ctx: GeneratorContext, table: str) -> ChannelPlan:
    """Draw the channel's basket sizes and return decisions up front.

    The plan fixes every ticket's line count and which lines return, so
    any chunk of the remaining (fixed-draws-per-unit) streams can be
    generated independently by jump-ahead.  Deterministic for a given
    context: workers rebuild the identical plan from (scale, seed)."""
    target_sales = ctx.rows(table)
    target_returns = ctx.rows(RETURNS_OF[table])
    return_prob = min(1.0, target_returns / max(target_sales, 1))
    rng = ctx.streams.fresh(table, "basket")
    drawn: list[np.ndarray] = []
    total = 0
    while total < target_sales:
        # expected basket ~10.5; overshoot slightly rather than loop
        k = max(64, (target_sales - total) // 8)
        block = rng.uniform_int_batch(_BASKET_MIN, _BASKET_MAX, k)
        drawn.append(block)
        total += int(block.sum())
    basket = np.concatenate(drawn) if drawn else np.zeros(0, dtype=np.int64)
    cum = np.cumsum(basket)
    num_tickets = int(np.searchsorted(cum, target_sales)) + 1 if target_sales else 0
    basket = basket[:num_tickets].copy()
    if num_tickets:
        basket[-1] -= int(cum[num_tickets - 1]) - target_sales
    line_start = np.zeros(num_tickets + 1, dtype=np.int64)
    np.cumsum(basket, out=line_start[1:])
    decided = ctx.streams.fresh(table, "retdec").uniform_batch(target_sales)
    decided = decided < return_prob
    take = decided & (np.cumsum(decided) <= target_returns)
    return ChannelPlan(
        table=table,
        target_sales=target_sales,
        target_returns=target_returns,
        return_prob=return_prob,
        basket=basket,
        line_start=line_start,
        take=take,
    )


def _dedupe_items(items: np.ndarray, ticket_of: np.ndarray, pool: int) -> np.ndarray:
    """Make item keys distinct within each ticket — order lines are
    distinct per (ticket/order, item), which the sales-to-returns join
    relies on.  Duplicates are repaired with the same linear probe the
    scalar generator used (``item % pool + 1``), applied in line order,
    so the result is independent of how lines are chunked."""
    if pool <= 1 or len(items) == 0:
        return items
    key = ticket_of * np.int64(pool + 1) + items
    uniq, counts = np.unique(key, return_counts=True)
    if not (counts > 1).any():
        return items
    dup_tickets = np.unique(uniq[counts > 1] // np.int64(pool + 1))
    items = items.copy()
    starts = np.searchsorted(ticket_of, dup_tickets, side="left")
    ends = np.searchsorted(ticket_of, dup_tickets, side="right")
    for s, e in zip(starts, ends):
        seen: set[int] = set()
        for i in range(s, e):
            item = int(items[i])
            while item in seen and len(seen) < pool:
                item = item % pool + 1  # linear probe; pool >> basket size
            seen.add(item)
            items[i] = item
    return items


def _expand(arrays, rep):
    """Repeat per-ticket (value, null) pairs out to per-line arrays."""
    out = []
    for value, null in arrays:
        out.append((np.repeat(value, rep), None if null is None else np.repeat(null, rep)))
    return out


def _fill(table: ColumnarTable, arrays) -> ColumnarTable:
    for col, (value, null) in zip(table.schema.columns, arrays):
        table.set(col.name, value, null)
    return table.finish()


# ---------------------------------------------------------------------------
# channel kernels
# ---------------------------------------------------------------------------


def generate_channel_chunk(
    ctx: GeneratorContext,
    table: str,
    chunk: int = 0,
    n_chunks: int = 1,
    plan: ChannelPlan | None = None,
) -> tuple[ColumnarTable, ColumnarTable]:
    """Generate chunk ``chunk`` of ``n_chunks`` for one sales channel;
    returns ``(sales, returns)`` columnar tables.  Concatenating all
    chunks in order is byte-identical to ``n_chunks=1``."""
    if plan is None:
        plan = plan_channel(ctx, table)
    t0, t1 = plan.ticket_range(chunk, n_chunks)
    if table == "store_sales":
        return _store_chunk(ctx, plan, t0, t1)
    return _catalog_like_chunk(ctx, plan, t0, t1)


def _header_block(ctx, raw, start, fk_spec):
    """Decode consecutive (null_u, value) fk pairs from a header block."""
    out = []
    col = start
    for fk_table, null_fraction in fk_spec:
        out.append(ctx.fk_from_raw(fk_table, raw[:, col], raw[:, col + 1], null_fraction))
        col += 2
    return out


def _return_block(ctx, plan, t0, t1, date_line, line_cols, p):
    """The shared returns kernel: which lines in [l0, l1) are returned,
    positioned on the retbody stream at 7 draws per *global* return."""
    l0, l1 = int(plan.line_start[t0]), int(plan.line_start[t1])
    taken = plan.take[l0:l1]
    n_ret = int(np.count_nonzero(taken))
    taken_before = int(np.count_nonzero(plan.take[:l0]))
    rng = ctx.streams.fresh(plan.table, "retbody")
    raw = rng.jump(RETURN_DRAWS * taken_before).raw_batch(RETURN_DRAWS * n_ret)
    raw = raw.reshape(n_ret, RETURN_DRAWS)
    # layout: [date_off, time_null_u, time_value, reason, qty, fee_u, refund_u]
    ret_date = ctx.clamp_date_sk_batch(date_line[taken] + ints_from_raw(raw[:, 0], 1, 90))
    ret_time, ret_time_null = ctx.fk_from_raw("time_dim", raw[:, 1], raw[:, 2], 0.02)
    reason, reason_null = ctx.fk_from_raw("reason", None, raw[:, 3], 0.0)
    rp = _return_pricing_from_raw(raw[:, 4:7], p, taken)
    head = [(ret_date, None), (ret_time, ret_time_null)]
    mid = [(value[taken], None if null is None else null[taken]) for value, null in line_cols]
    tail = [(reason, reason_null)] + [
        (rp[k], None)
        for k in (
            "quantity", "amount", "tax", "amount_inc_tax", "fee",
            "ship", "refunded", "reversed", "credit", "net_loss",
        )
    ]
    return head, mid, tail


def _store_chunk(ctx, plan, t0, t1):
    nt = t1 - t0
    basket = plan.basket[t0:t1]
    l0, l1 = int(plan.line_start[t0]), int(plan.line_start[t1])
    nl = l1 - l0
    header = ctx.streams.fresh("store_sales", "header")
    raw_h = header.jump(15 * t0).raw_batch(15 * nt).reshape(nt, 15)
    date_t = ctx.sales_date_sks_from_raw(raw_h[:, 0], raw_h[:, 1], raw_h[:, 2])
    fks_t = _header_block(ctx, raw_h, 3, _STORE_HEADER_FKS)

    ticket_of = np.repeat(np.arange(nt, dtype=np.int64), basket)
    ticket_no = t0 + 1 + ticket_of
    (date_l, _), *fks_l = _expand([(date_t, None)] + fks_t, basket)
    time_l, cust_l, cdemo_l, hdemo_l, addr_l, store_l = fks_l

    line = ctx.streams.fresh("store_sales", "line")
    raw_l = line.jump(10 * l0).raw_batch(10 * nl).reshape(nl, 10)
    # layout: [item, promo_null_u, promo_value, pricing x7]
    pool = max(ctx.key_pools.get("item", 1), 1)
    item = _dedupe_items(ints_from_raw(raw_l[:, 0], 1, pool), ticket_of, pool)
    promo, promo_null = ctx.fk_from_raw("promotion", raw_l[:, 1], raw_l[:, 2], 0.3)
    p = _pricing_from_raw(raw_l[:, 3:10])

    sales = _fill(
        ColumnarTable(ALL_TABLES["store_sales"]),
        [(date_l, None), time_l, (item, None), cust_l, cdemo_l, hdemo_l,
         addr_l, store_l, (promo, promo_null), (ticket_no, None)]
        + [(p[k], None) for k in (
            "quantity", "wholesale_cost", "list_price", "sales_price",
            "ext_discount_amt", "ext_sales_price", "ext_wholesale_cost",
            "ext_list_price", "ext_tax", "coupon_amt", "net_paid",
            "net_paid_inc_tax", "net_profit",
        )],
    )

    line_cols = [(item, None), cust_l, cdemo_l, hdemo_l, addr_l, store_l, (ticket_no, None)]
    head, mid, tail = _return_block(ctx, plan, t0, t1, date_l, line_cols, p)
    item_r, cust_r, cdemo_r, hdemo_r, addr_r, store_r, ticket_r = mid
    returns = _fill(
        ColumnarTable(ALL_TABLES["store_returns"]),
        head + [item_r, cust_r, cdemo_r, hdemo_r, addr_r, store_r, tail[0], ticket_r]
        + tail[1:],
    )
    return sales, returns


def _catalog_like_chunk(ctx, plan, t0, t1):
    table = plan.table
    nt = t1 - t0
    basket = plan.basket[t0:t1]
    l0, l1 = int(plan.line_start[t0]), int(plan.line_start[t1])
    nl = l1 - l0
    header = ctx.streams.fresh(table, "header")
    raw_h = header.jump(30 * t0).raw_batch(30 * nt).reshape(nt, 30)
    # layout: [date x3, time x2, bill block x8, ship_decision_u,
    #          ship block x8, channel fk1 x2, channel fk2 x2,
    #          ship_mode x2, warehouse x2]
    date_t = ctx.sales_date_sks_from_raw(raw_h[:, 0], raw_h[:, 1], raw_h[:, 2])
    (time_t,) = _header_block(ctx, raw_h, 3, (("time_dim", 0.02),))
    bill_t = _header_block(ctx, raw_h, 5, _CUSTOMER_BLOCK)
    alt_t = _header_block(ctx, raw_h, 14, _CUSTOMER_BLOCK)
    # ~85% of orders ship to the billing customer
    use_bill = (uniforms_from_raw(raw_h[:, 13]) < 0.85) & ~_null_of(bill_t[0], nt)
    ship_t = [
        (
            np.where(use_bill, bv, av),
            np.where(use_bill, _null_of((bv, bn), nt), _null_of((av, an), nt)),
        )
        for (bv, bn), (av, an) in zip(bill_t, alt_t)
    ]
    chan_t = _header_block(ctx, raw_h, 22, _CHANNEL_FKS[table])
    (mode_t, wh_t) = _header_block(ctx, raw_h, 26, (("ship_mode", 0.02), ("warehouse", 0.02)))

    ticket_of = np.repeat(np.arange(nt, dtype=np.int64), basket)
    order_no = t0 + 1 + ticket_of
    per_ticket = [(date_t, None), time_t] + bill_t + ship_t + chan_t + [mode_t, wh_t]
    expanded = _expand(per_ticket, basket)
    (date_l, _), time_l = expanded[0], expanded[1]
    bill_l, ship_l = expanded[2:6], expanded[6:10]
    chan_l, mode_l, wh_l = expanded[10:12], expanded[12], expanded[13]

    line = ctx.streams.fresh(table, "line")
    raw_l = line.jump(12 * l0).raw_batch(12 * nl).reshape(nl, 12)
    # layout: [item, promo_null_u, promo_value, ship_date_off,
    #          pricing x7, ship_cost_u]
    pool = max(ctx.key_pools.get("item", 1), 1)
    item = _dedupe_items(ints_from_raw(raw_l[:, 0], 1, pool), ticket_of, pool)
    promo, promo_null = ctx.fk_from_raw("promotion", raw_l[:, 1], raw_l[:, 2], 0.3)
    ship_date = ctx.clamp_date_sk_batch(date_l + ints_from_raw(raw_l[:, 3], 2, 120))
    p = _pricing_from_raw(raw_l[:, 4:11])
    ship_cost = _r2(p["ext_wholesale_cost"] * uniforms_from_raw(raw_l[:, 11]) * 0.5)

    pricing_cols = (
        [(p[k], None) for k in (
            "quantity", "wholesale_cost", "list_price", "sales_price",
            "ext_discount_amt", "ext_sales_price", "ext_wholesale_cost",
            "ext_list_price", "ext_tax", "coupon_amt",
        )]
        + [(ship_cost, None)]
        + [(p[k], None) for k in ("net_paid", "net_paid_inc_tax")]
        + [
            (_r2(p["net_paid"] + ship_cost), None),
            (_r2(p["net_paid_inc_tax"] + ship_cost), None),
            (p["net_profit"], None),
        ]
    )
    if table == "catalog_sales":
        sales_cols = (
            [(date_l, None), time_l, (ship_date, None)]
            + bill_l + ship_l + chan_l + [mode_l, wh_l]
            + [(item, None), (promo, promo_null), (order_no, None)]
            + pricing_cols
        )
        ret_schema = "catalog_returns"
    else:
        sales_cols = (
            [(date_l, None), time_l, (ship_date, None), (item, None)]
            + bill_l + ship_l + chan_l + [mode_l, wh_l]
            + [(promo, promo_null), (order_no, None)]
            + pricing_cols
        )
        ret_schema = "web_returns"
    sales = _fill(ColumnarTable(ALL_TABLES[table]), sales_cols)

    if table == "catalog_sales":
        line_cols = [(item, None)] + bill_l + ship_l + chan_l + [mode_l, wh_l, (order_no, None)]
    else:
        line_cols = [(item, None)] + bill_l + ship_l + [chan_l[0], (order_no, None)]
    head, mid, tail = _return_block(ctx, plan, t0, t1, date_l, line_cols, p)
    returns = _fill(
        ColumnarTable(ALL_TABLES[ret_schema]),
        head + mid[:-1] + [tail[0], mid[-1]] + tail[1:],
    )
    return sales, returns


def _null_of(pair, n):
    value, null = pair
    return np.zeros(n, dtype=bool) if null is None else null


# ---------------------------------------------------------------------------
# inventory
# ---------------------------------------------------------------------------


@dataclass
class InventoryPlan:
    """Weekly warehouse inventory snapshot layout: snapshot weeks × an
    item stride × warehouses, capped at the row budget.  Row ``r`` maps
    to (week, item slot, warehouse) by pure arithmetic, so any row range
    can be generated independently."""

    total: int
    n_weeks: int
    items_per_week: int
    n_warehouses: int
    stride: int


def plan_inventory(ctx: GeneratorContext) -> InventoryPlan:
    """Lay out the inventory cross-join (week x item x warehouse) so any
    row range can be generated independently by stream jump-ahead."""
    target = ctx.rows("inventory")
    n_items = max(ctx.key_pools.get("item", 1), 1)
    n_wh = max(ctx.key_pools.get("warehouse", 1), 1)
    n_days = ctx.rows("date_dim")
    n_weeks = max(1, min(n_days // 7, 52))
    per_week = max(1, target // (n_weeks * n_wh))
    stride = max(1, n_items // per_week)
    items_per_week = (n_items + stride - 1) // stride
    total = min(target, n_weeks * items_per_week * n_wh)
    return InventoryPlan(total, n_weeks, items_per_week, n_wh, stride)


def generate_inventory_chunk(
    ctx: GeneratorContext,
    chunk: int = 0,
    n_chunks: int = 1,
    plan: InventoryPlan | None = None,
) -> ColumnarTable:
    """Generate one row-range chunk of the inventory snapshot table."""
    if plan is None:
        plan = plan_inventory(ctx)
    r0 = plan.total * chunk // n_chunks
    r1 = plan.total * (chunk + 1) // n_chunks
    rows = np.arange(r0, r1, dtype=np.int64)
    per_week = plan.items_per_week * plan.n_warehouses
    week = rows // per_week
    slot = (rows % per_week) // plan.n_warehouses
    warehouse = rows % plan.n_warehouses + 1
    item = 1 + slot * plan.stride
    n_days = ctx.rows("date_dim")
    date_sk = ctx.calendar.sk_at(0) + np.minimum(week * 7, n_days - 1)
    rng = ctx.streams.fresh("inventory", "body")
    raw = rng.jump(2 * int(r0)).raw_batch(2 * len(rows)).reshape(len(rows), 2)
    # layout: [quantity, null_u] — matching the scalar
    # maybe_null(uniform_int(0, 1000), 0.02) draw order
    quantity = ints_from_raw(raw[:, 0], 0, 1000)
    null = uniforms_from_raw(raw[:, 1]) < 0.02
    out = ColumnarTable(ALL_TABLES["inventory"])
    out.set("inv_date_sk", date_sk)
    out.set("inv_item_sk", item)
    out.set("inv_warehouse_sk", warehouse)
    out.set("inv_quantity_on_hand", quantity, null)
    return out.finish()


# ---------------------------------------------------------------------------
# whole-table wrappers (serial path and row-oriented compatibility)
# ---------------------------------------------------------------------------


def generate_channel(
    ctx: GeneratorContext, table: str
) -> tuple[ColumnarTable, ColumnarTable]:
    """One sales channel, whole-table (the single-chunk case)."""
    return generate_channel_chunk(ctx, table, 0, 1)


def generate_inventory(ctx: GeneratorContext) -> ColumnarTable:
    """The whole inventory snapshot table (the single-chunk case)."""
    return generate_inventory_chunk(ctx, 0, 1)


def gen_store_sales(ctx: GeneratorContext) -> tuple[list[tuple], list[tuple]]:
    """Returns (store_sales rows, store_returns rows)."""
    sales, returns = generate_channel(ctx, "store_sales")
    return sales.to_rows(), returns.to_rows()


def gen_catalog_sales(ctx: GeneratorContext) -> tuple[list[tuple], list[tuple]]:
    """Catalog channel: (catalog_sales rows, catalog_returns rows)."""
    sales, returns = generate_channel(ctx, "catalog_sales")
    return sales.to_rows(), returns.to_rows()


def gen_web_sales(ctx: GeneratorContext) -> tuple[list[tuple], list[tuple]]:
    """Web channel: (web_sales rows, web_returns rows)."""
    sales, returns = generate_channel(ctx, "web_sales")
    return sales.to_rows(), returns.to_rows()


def gen_inventory(ctx: GeneratorContext) -> list[tuple]:
    """Weekly warehouse inventory snapshots (shared by the catalog and
    web channels)."""
    return generate_inventory(ctx).to_rows()
