"""Shared state for the table generators.

The :class:`GeneratorContext` binds together the scaling model, the
per-column random streams, the business calendar, the item hierarchy
and the surrogate-key pools that fact generators sample foreign keys
from. One context generates one consistent database.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field

import numpy as np

from ..engine.types import date_to_epoch_days
from .distributions import SalesDateDistribution
from .hierarchies import ItemHierarchy
from .rng import RandomStream, RandomStreamFactory, ints_from_raw, uniforms_from_raw
from .scaling import ROW_COUNT_ANCHORS, ScalingModel

#: dsdgen's traditional julian-style base for date surrogate keys
DATE_SK_BASE = 2_415_022

#: the business window sales transactions fall into
SALES_START = _dt.date(1998, 1, 1)
SALES_YEARS = 5


@dataclass
class Calendar:
    """The date_dim window and the sales sub-window."""

    start: _dt.date
    num_days: int

    @property
    def end(self) -> _dt.date:
        return self.start + _dt.timedelta(days=self.num_days - 1)

    def date_at(self, offset: int) -> _dt.date:
        return self.start + _dt.timedelta(days=offset)

    def sk_at(self, offset: int) -> int:
        return DATE_SK_BASE + offset

    def offset_of(self, value: _dt.date) -> int:
        return (value - self.start).days

    def sk_of_date(self, value: _dt.date) -> int:
        return self.sk_at(self.offset_of(value))

    def epoch_days_at(self, offset: int) -> int:
        return date_to_epoch_days(self.date_at(offset))

    @property
    def sales_years(self) -> list[int]:
        last = min(self.end.year, SALES_START.year + SALES_YEARS - 1)
        return list(range(SALES_START.year, last + 1)) or [self.start.year]


class GeneratorContext:
    """Shared state binding scaling, RNG streams, calendar, hierarchy and key pools for one consistent database."""
    def __init__(self, scale_factor: float, seed: int = 19620718, strict: bool = False):
        self.scaling = ScalingModel(scale_factor, strict=strict)
        self.streams = RandomStreamFactory(seed)
        self.seed = seed
        self.hierarchy = ItemHierarchy()
        self.sales_dates = SalesDateDistribution()
        num_days = self.scaling.rows("date_dim")
        if self.scaling.is_model_scale:
            start = SALES_START
        else:
            start = _dt.date(1900, 1, 2)
        self.calendar = Calendar(start, num_days)
        #: surrogate-key pool sizes, filled as dimensions are generated:
        #: table -> max surrogate key (keys are 1..max)
        self.key_pools: dict[str, int] = {}

    def rows(self, table: str) -> int:
        return self.scaling.rows(table)

    def stream(self, *name: str) -> RandomStream:
        return self.streams.stream(*name)

    def register_keys(self, table: str, count: int) -> None:
        self.key_pools[table] = count

    def ensure_key_pools(self) -> None:
        """Fill every surrogate-key pool from the scaling model.

        Every dimension generator registers exactly its scaled row count
        as its key pool, so a parallel worker (or a fact generator run
        standalone) can predict all pools without generating the
        dimensions first.  ``test_parallel_dsdgen`` pins this invariant.
        """
        for table in ROW_COUNT_ANCHORS:
            self.key_pools.setdefault(table, self.scaling.rows(table))

    def sample_fk(self, table: str, rng: RandomStream, null_fraction: float = 0.0):
        """A uniform surrogate key into ``table``, occasionally NULL."""
        size = self.key_pools.get(table)
        if not size:
            return None
        if null_fraction > 0 and rng.uniform() < null_fraction:
            return None
        return rng.uniform_int(1, size)

    def random_date_sk(self, rng: RandomStream, null_fraction: float = 0.0):
        """A uniform date surrogate key within the calendar (date sks are
        DATE_SK_BASE-offset, not 1..N, so they cannot come from
        :meth:`sample_fk`)."""
        if null_fraction > 0 and rng.uniform() < null_fraction:
            return None
        return self.calendar.sk_at(rng.uniform_int(0, self.calendar.num_days - 1))

    def clamp_date_sk(self, sk: int) -> int:
        """Clamp a derived date key (return/ship dates computed as
        offsets from a sale date) to the calendar."""
        return min(sk, self.calendar.sk_at(self.calendar.num_days - 1))

    # -- sales-date machinery (comparability zones) --------------------------

    def sample_sales_date_offset(self, rng: RandomStream) -> int:
        """An offset into the calendar drawn from the zoned weekly
        distribution of Figure 2, uniform within the chosen week."""
        years = self.calendar.sales_years
        year = years[rng.uniform_int(0, len(years) - 1)]
        week = self.sales_dates.sample_week(rng)
        day_in_week = rng.uniform_int(0, 6)
        day_of_year = min((week - 1) * 7 + day_in_week, 364)
        value = _dt.date(year, 1, 1) + _dt.timedelta(days=day_of_year)
        if value > self.calendar.end:
            value = self.calendar.end
        return self.calendar.offset_of(value)

    def sales_date_sk(self, rng: RandomStream) -> int:
        return self.calendar.sk_at(self.sample_sales_date_offset(rng))

    def sales_date_sks_from_raw(
        self, raw_year: np.ndarray, raw_week: np.ndarray, raw_day: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`sales_date_sk` over pre-drawn raw columns.

        Consumes the same three draws per date (year, zoned week, day in
        week) so scalar and batch generation agree draw-for-draw.
        """
        years = self.calendar.sales_years
        year_idx = ints_from_raw(raw_year, 0, len(years) - 1)
        week = self.sales_dates.sample_week_from_raw(raw_week)
        day_in_week = ints_from_raw(raw_day, 0, 6)
        day_of_year = np.minimum((week - 1) * 7 + day_in_week, 364)
        year_start = np.array(
            [self.calendar.offset_of(_dt.date(y, 1, 1)) for y in years],
            dtype=np.int64,
        )
        offsets = np.minimum(
            year_start[year_idx] + day_of_year, self.calendar.num_days - 1
        )
        return offsets + DATE_SK_BASE

    def clamp_date_sk_batch(self, sks: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`clamp_date_sk`."""
        return np.minimum(sks, self.calendar.sk_at(self.calendar.num_days - 1))

    def fk_from_raw(
        self, table: str, raw_null: np.ndarray | None, raw_value: np.ndarray,
        null_fraction: float = 0.0,
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Vectorized :meth:`sample_fk` over pre-drawn raw columns;
        returns ``(keys, null_mask_or_None)``."""
        size = self.key_pools.get(table)
        n = len(raw_value)
        if not size:
            return np.zeros(n, dtype=np.int64), np.ones(n, dtype=bool)
        keys = ints_from_raw(raw_value, 1, size)
        if null_fraction > 0 and raw_null is not None:
            null = uniforms_from_raw(raw_null) < null_fraction
            return keys, null
        return keys, None

    def business_key(self, prefix: str, entity: int) -> str:
        """A 16-character business key, dsdgen style."""
        return f"{prefix}{entity:0{16 - len(prefix)}d}"
