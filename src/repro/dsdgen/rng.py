"""Deterministic per-stream random number generation.

dsdgen assigns every table column its own random stream so that adding
a column or table never perturbs the data of another — and so the query
generator can reproduce the exact domain a column was drawn from. We
reproduce that design: a :class:`RandomStream` is a 64-bit congruential
generator seeded from ``(benchmark seed, stream name)`` via a
SplitMix64-style mixer, giving independent, reproducible streams.

Streams are cheap value types: creating ``RandomStreamFactory(seed)``
and asking it for the ``("store_sales", "ss_quantity")`` stream always
yields the same sequence, regardless of generation order.

Two capabilities make the generator parallelizable (the kit's
``-parallel``/``-child`` contract):

* :meth:`RandomStream.jump` — an O(log n) jump-ahead.  An LCG step is
  the affine map ``x -> A*x + C (mod 2**64)``; ``n`` steps compose to
  ``x -> A**n * x + C*(A**n - 1)/(A - 1)``, which we evaluate by
  square-and-multiply on ``(a, c)`` pairs, so a worker can position a
  stream at any absolute offset without drawing the skipped values.

* batch draws (:meth:`raw_batch`, :meth:`uniform_batch`, ...) — the
  closed form ``s_k = A**k * s0 + C*G_k`` with ``G_k = 1 + A + ... +
  A**(k-1)`` is evaluated with wrapping ``uint64`` numpy arithmetic
  (``A**k`` via cumprod, ``G_k`` via cumsum), yielding the exact same
  values as ``k`` scalar :meth:`next_raw` calls but at numpy speed.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

_MASK64 = (1 << 64) - 1

# Knuth's MMIX multiplier — a full-period 64-bit LCG
_MULT = 6364136223846793005
_INC = 1442695040888963407

#: batch draws are produced in slabs of this size so the cached
#: power/geometric tables stay bounded regardless of request size
_SLAB = 1 << 18

# lazily grown closed-form tables: _POWS[k] = A**k, _GEO[k] = sum_{j<k} A**j,
# both mod 2**64 (wrapping uint64 arithmetic)
_POWS = np.ones(1, dtype=np.uint64)
_GEO = np.zeros(1, dtype=np.uint64)


def _ensure_tables(n: int) -> None:
    global _POWS, _GEO
    if len(_POWS) > n:
        return
    size = len(_POWS)
    grown = max(n + 1, 2 * size)
    pows = np.empty(grown, dtype=np.uint64)
    pows[:size] = _POWS
    mult = np.uint64(_MULT)
    with np.errstate(over="ignore"):
        for k in range(size, grown):
            pows[k] = pows[k - 1] * mult
        geo = np.empty(grown, dtype=np.uint64)
        geo[:size] = _GEO
        np.cumsum(pows[size - 1 : grown - 1], dtype=np.uint64, out=geo[size:])
        geo[size:] += _GEO[size - 1]
    _POWS, _GEO = pows, geo


def _splitmix64(x: int) -> int:
    """One step of SplitMix64; used to derive stream seeds."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    z = x
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def stream_seed(base_seed: int, name: str) -> int:
    """Mix a base seed with a stream name into a 64-bit stream seed."""
    h = base_seed & _MASK64
    for ch in name:
        h = _splitmix64(h ^ ord(ch))
    return h or 1


class RandomStream:
    """A deterministic uniform generator with convenience draws."""

    def __init__(self, seed: int):
        self._state = seed & _MASK64 or 1

    # -- scalar draws --------------------------------------------------------

    def next_raw(self) -> int:
        """Advance the LCG and return 64 raw bits."""
        self._state = (self._state * _MULT + _INC) & _MASK64
        return self._state

    def uniform(self) -> float:
        """A float in [0, 1) with 53 bits of precision."""
        return (self.next_raw() >> 11) / float(1 << 53)

    def uniform_int(self, low: int, high: int) -> int:
        """An integer in the inclusive range [low, high]."""
        if high < low:
            raise ValueError(f"empty range [{low}, {high}]")
        span = high - low + 1
        return low + self.next_raw() % span

    def gaussian(self, mu: float = 0.0, sigma: float = 1.0) -> float:
        """Box–Muller transform (one value per call, second discarded to
        keep the stream position deterministic per draw count)."""
        import math

        u1 = max(self.uniform(), 1e-12)
        u2 = self.uniform()
        z = math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)
        return mu + sigma * z

    def choice(self, items: Sequence):
        return items[self.uniform_int(0, len(items) - 1)]

    def weighted_index(self, cumulative: Sequence[float]) -> int:
        """Index into a cumulative-weight table (last entry must be the
        total weight)."""
        x = self.uniform() * cumulative[-1]
        lo, hi = 0, len(cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] <= x:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def sample_without_replacement(self, population: int, k: int) -> list[int]:
        """k distinct integers from range(population)."""
        if k > population:
            raise ValueError("sample larger than population")
        chosen: set[int] = set()
        while len(chosen) < k:
            chosen.add(self.uniform_int(0, population - 1))
        return sorted(chosen)

    def maybe_null(self, value, null_fraction: float):
        """Replace ``value`` with None at the given rate (dsdgen columns
        carry explicit null fractions)."""
        if null_fraction > 0 and self.uniform() < null_fraction:
            return None
        return value

    # -- jump-ahead ----------------------------------------------------------

    def jump(self, n: int) -> "RandomStream":
        """Advance the stream by ``n`` draws in O(log n).

        ``jump(n)`` leaves the stream in exactly the state ``n`` calls of
        :meth:`next_raw` would, which is what lets a parallel worker
        position its streams at a chunk offset without generating the
        skipped rows.  Returns ``self`` for chaining.
        """
        if n < 0:
            raise ValueError("cannot jump backwards")
        a_acc, c_acc = 1, 0
        a, c = _MULT, _INC
        while n:
            if n & 1:
                a_acc = (a * a_acc) & _MASK64
                c_acc = (a * c_acc + c) & _MASK64
            c = ((a + 1) * c) & _MASK64
            a = (a * a) & _MASK64
            n >>= 1
        self._state = (a_acc * self._state + c_acc) & _MASK64
        return self

    # -- batch draws ---------------------------------------------------------

    def raw_batch(self, n: int) -> np.ndarray:
        """The next ``n`` raw 64-bit outputs as a ``uint64`` array.

        Bit-identical to ``n`` scalar :meth:`next_raw` calls and leaves
        the stream in the same final state.
        """
        if n < 0:
            raise ValueError("negative batch size")
        out = np.empty(n, dtype=np.uint64)
        filled = 0
        while filled < n:
            k = min(_SLAB, n - filled)
            _ensure_tables(k)
            s0 = np.uint64(self._state)
            inc = np.uint64(_INC)
            with np.errstate(over="ignore"):
                block = _POWS[1 : k + 1] * s0 + inc * _GEO[1 : k + 1]
            out[filled : filled + k] = block
            self._state = int(block[-1])
            filled += k
        return out

    def uniform_batch(self, n: int) -> np.ndarray:
        """``n`` floats in [0, 1), matching scalar :meth:`uniform`."""
        raw = self.raw_batch(n)
        return uniforms_from_raw(raw)

    def uniform_int_batch(self, low: int, high: int, n: int) -> np.ndarray:
        """``n`` integers in [low, high], matching :meth:`uniform_int`."""
        if high < low:
            raise ValueError(f"empty range [{low}, {high}]")
        raw = self.raw_batch(n)
        return ints_from_raw(raw, low, high)

    def gaussian_batch(self, n: int, mu: float = 0.0, sigma: float = 1.0) -> np.ndarray:
        """``n`` Gaussian draws, two uniforms each, matching the scalar
        interleaved (u1, u2) order of :meth:`gaussian`."""
        raw = self.raw_batch(2 * n)
        u = uniforms_from_raw(raw)
        u1 = np.maximum(u[0::2], 1e-12)
        u2 = u[1::2]
        z = np.sqrt(-2.0 * np.log(u1)) * np.cos(2.0 * np.pi * u2)
        return mu + sigma * z

    def choice_batch(self, items: Sequence, n: int) -> np.ndarray:
        """``n`` independent picks from ``items`` (1 draw each)."""
        idx = self.uniform_int_batch(0, len(items) - 1, n)
        pool = np.asarray(items, dtype=object)
        return pool[idx]

    def weighted_index_batch(self, cumulative: Sequence[float], n: int) -> np.ndarray:
        """``n`` weighted indexes, matching :meth:`weighted_index`."""
        cum = np.asarray(cumulative, dtype=np.float64)
        x = self.uniform_batch(n) * cum[-1]
        return np.searchsorted(cum, x, side="right").astype(np.int64)

    def permutation_batch(self, n: int) -> np.ndarray:
        """A permutation of range(n) via Fisher–Yates (n-1 draws)."""
        perm = np.arange(n, dtype=np.int64)
        if n < 2:
            return perm
        raw = self.raw_batch(n - 1)
        for k, i in enumerate(range(n - 1, 0, -1)):
            j = int(raw[k] % np.uint64(i + 1))
            perm[i], perm[j] = perm[j], perm[i]
        return perm


def uniforms_from_raw(raw: np.ndarray) -> np.ndarray:
    """Map raw 64-bit outputs to [0, 1) floats (scalar-compatible)."""
    return (raw >> np.uint64(11)).astype(np.float64) / float(1 << 53)


def ints_from_raw(raw: np.ndarray, low: int, high: int) -> np.ndarray:
    """Map raw outputs to [low, high] ints (scalar-compatible modulo)."""
    span = np.uint64(high - low + 1)
    return (raw % span).astype(np.int64) + np.int64(low)


class RandomStreamFactory:
    """Creates named, independent streams from one benchmark seed."""

    def __init__(self, base_seed: int = 19620718):
        # default seed: dsdgen's traditional build date seed
        self.base_seed = base_seed
        self._streams: dict[str, RandomStream] = {}

    def stream(self, *name_parts: str) -> RandomStream:
        """The stream for a dotted name; repeated calls CONTINUE the same
        stream (matching dsdgen, where a column's stream advances as rows
        are generated)."""
        name = ".".join(name_parts)
        if name not in self._streams:
            self._streams[name] = RandomStream(stream_seed(self.base_seed, name))
        return self._streams[name]

    def fresh(self, *name_parts: str) -> RandomStream:
        """A stream reset to its initial position (for reproducing a
        column's domain independently of generation progress)."""
        return RandomStream(stream_seed(self.base_seed, ".".join(name_parts)))
