"""Deterministic per-stream random number generation.

dsdgen assigns every table column its own random stream so that adding
a column or table never perturbs the data of another — and so the query
generator can reproduce the exact domain a column was drawn from. We
reproduce that design: a :class:`RandomStream` is a 64-bit congruential
generator seeded from ``(benchmark seed, stream name)`` via a
SplitMix64-style mixer, giving independent, reproducible streams.

Streams are cheap value types: creating ``RandomStreamFactory(seed)``
and asking it for the ``("store_sales", "ss_quantity")`` stream always
yields the same sequence, regardless of generation order.
"""

from __future__ import annotations

from typing import Sequence

_MASK64 = (1 << 64) - 1

# Knuth's MMIX multiplier — a full-period 64-bit LCG
_MULT = 6364136223846793005
_INC = 1442695040888963407


def _splitmix64(x: int) -> int:
    """One step of SplitMix64; used to derive stream seeds."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    z = x
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def stream_seed(base_seed: int, name: str) -> int:
    """Mix a base seed with a stream name into a 64-bit stream seed."""
    h = base_seed & _MASK64
    for ch in name:
        h = _splitmix64(h ^ ord(ch))
    return h or 1


class RandomStream:
    """A deterministic uniform generator with convenience draws."""

    def __init__(self, seed: int):
        self._state = seed & _MASK64 or 1

    def next_raw(self) -> int:
        """Advance the LCG and return 64 raw bits."""
        self._state = (self._state * _MULT + _INC) & _MASK64
        return self._state

    def uniform(self) -> float:
        """A float in [0, 1) with 53 bits of precision."""
        return (self.next_raw() >> 11) / float(1 << 53)

    def uniform_int(self, low: int, high: int) -> int:
        """An integer in the inclusive range [low, high]."""
        if high < low:
            raise ValueError(f"empty range [{low}, {high}]")
        span = high - low + 1
        return low + self.next_raw() % span

    def gaussian(self, mu: float = 0.0, sigma: float = 1.0) -> float:
        """Box–Muller transform (one value per call, second discarded to
        keep the stream position deterministic per draw count)."""
        import math

        u1 = max(self.uniform(), 1e-12)
        u2 = self.uniform()
        z = math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)
        return mu + sigma * z

    def choice(self, items: Sequence):
        return items[self.uniform_int(0, len(items) - 1)]

    def weighted_index(self, cumulative: Sequence[float]) -> int:
        """Index into a cumulative-weight table (last entry must be the
        total weight)."""
        x = self.uniform() * cumulative[-1]
        lo, hi = 0, len(cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] <= x:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def sample_without_replacement(self, population: int, k: int) -> list[int]:
        """k distinct integers from range(population)."""
        if k > population:
            raise ValueError("sample larger than population")
        chosen: set[int] = set()
        while len(chosen) < k:
            chosen.add(self.uniform_int(0, population - 1))
        return sorted(chosen)

    def maybe_null(self, value, null_fraction: float):
        """Replace ``value`` with None at the given rate (dsdgen columns
        carry explicit null fractions)."""
        if null_fraction > 0 and self.uniform() < null_fraction:
            return None
        return value


class RandomStreamFactory:
    """Creates named, independent streams from one benchmark seed."""

    def __init__(self, base_seed: int = 19620718):
        # default seed: dsdgen's traditional build date seed
        self.base_seed = base_seed
        self._streams: dict[str, RandomStream] = {}

    def stream(self, *name_parts: str) -> RandomStream:
        """The stream for a dotted name; repeated calls CONTINUE the same
        stream (matching dsdgen, where a column's stream advances as rows
        are generated)."""
        name = ".".join(name_parts)
        if name not in self._streams:
            self._streams[name] = RandomStream(stream_seed(self.base_seed, name))
        return self._streams[name]

    def fresh(self, *name_parts: str) -> RandomStream:
        """A stream reset to its initial position (for reproducing a
        column's domain independently of generation progress)."""
        return RandomStream(stream_seed(self.base_seed, ".".join(name_parts)))
