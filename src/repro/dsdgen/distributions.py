"""Data domains and distributions (§3.2, Figures 2 and 3).

TPC-DS populates most columns from *synthetic* distributions (uniform
integers, Gaussian word picks) but synthesizes *real-world* data for a
handful of crucial distributions, flattened into **comparability
zones**: ranges of the domain within which every value is equally
likely, so the query generator can substitute any value from a zone
without changing the number of qualifying rows.

The flagship example is the store-sales-by-week distribution of
Figure 2. The paper calibrates it against the US census monthly retail
series for department stores (2001) and defines three zones:

* zone 1 — January–July (low likelihood),
* zone 2 — August–October (medium),
* zone 3 — November–December (high).

``SalesDateDistribution`` reproduces that construction: the per-zone
step heights are the census mass of the zone spread uniformly over its
weeks, and ``sample_week`` draws with exactly those probabilities.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from .rng import RandomStream, uniforms_from_raw

# ---------------------------------------------------------------------------
# Figure 2: census series and comparability zones
# ---------------------------------------------------------------------------

#: US Census Bureau, unadjusted monthly retail sales, department stores
#: (excl. leased departments), 2001, in millions of dollars [12].
CENSUS_DEPT_STORE_SALES_2001 = {
    1: 12_775,
    2: 13_245,
    3: 16_106,
    4: 15_951,
    5: 16_628,
    6: 15_979,
    7: 15_208,
    8: 17_458,
    9: 14_960,
    10: 16_151,
    11: 19_079,
    12: 28_541,
}

#: month -> comparability zone (1 = low, 2 = medium, 3 = high)
MONTH_ZONE = {1: 1, 2: 1, 3: 1, 4: 1, 5: 1, 6: 1, 7: 1, 8: 2, 9: 2, 10: 2, 11: 3, 12: 3}

#: first ISO-ish week of each month in the 52-week year used by the
#: distribution (month m covers weeks _MONTH_WEEK0[m] .. _MONTH_WEEK0[m+1]-1)
_MONTH_WEEK0 = {1: 1, 2: 5, 3: 9, 4: 14, 5: 18, 6: 22, 7: 27, 8: 31, 9: 36, 10: 40, 11: 44, 12: 48, 13: 53}

WEEKS_PER_YEAR = 52


def week_month(week: int) -> int:
    """The calendar month a week (1-52) belongs to."""
    if not 1 <= week <= WEEKS_PER_YEAR:
        raise ValueError(f"week out of range: {week}")
    for month in range(1, 13):
        if _MONTH_WEEK0[month] <= week < _MONTH_WEEK0[month + 1]:
            return month
    return 12


def week_zone(week: int) -> int:
    """The comparability zone (1, 2, 3) of a sales week."""
    return MONTH_ZONE[week_month(week)]


@dataclass(frozen=True)
class SalesDateDistribution:
    """The zoned store-sales date distribution of Figure 2."""

    @property
    def zone_weeks(self) -> dict[int, list[int]]:
        zones: dict[int, list[int]] = {1: [], 2: [], 3: []}
        for week in range(1, WEEKS_PER_YEAR + 1):
            zones[week_zone(week)].append(week)
        return zones

    def zone_mass(self) -> dict[int, float]:
        """Fraction of annual sales mass in each zone, from the census."""
        total = sum(CENSUS_DEPT_STORE_SALES_2001.values())
        mass = {1: 0.0, 2: 0.0, 3: 0.0}
        for month, sales in CENSUS_DEPT_STORE_SALES_2001.items():
            mass[MONTH_ZONE[month]] += sales / total
        return mass

    def weekly_weights(self) -> list[float]:
        """P(sale in week w) for w = 1..52 — the step function (square
        markers) of Figure 2: uniform within each zone."""
        mass = self.zone_mass()
        zones = self.zone_weeks
        weights = []
        for week in range(1, WEEKS_PER_YEAR + 1):
            zone = week_zone(week)
            weights.append(mass[zone] / len(zones[zone]))
        return weights

    def census_weekly_weights(self) -> list[float]:
        """P(sale in week w) following the raw census curve (the diamond
        markers of Figure 2), for comparison."""
        total = sum(CENSUS_DEPT_STORE_SALES_2001.values())
        weights = []
        for week in range(1, WEEKS_PER_YEAR + 1):
            month = week_month(week)
            weeks_in_month = len(
                [w for w in range(1, WEEKS_PER_YEAR + 1) if week_month(w) == month]
            )
            weights.append(
                CENSUS_DEPT_STORE_SALES_2001[month] / total / weeks_in_month
            )
        return weights

    def weekly_cumulative(self) -> list[float]:
        """Cached cumulative table over :meth:`weekly_weights` (the
        distribution is static, so the hot samplers share one table)."""
        return list(_weekly_cumulative())

    def sample_week(self, rng: RandomStream) -> int:
        """Draw a sales week 1..52 from the zoned distribution."""
        return rng.weighted_index(_weekly_cumulative()) + 1

    def sample_week_from_raw(self, raw: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`sample_week` over pre-drawn raw outputs
        (one draw per week, identical to the scalar binary search)."""
        cum = np.asarray(_weekly_cumulative(), dtype=np.float64)
        x = uniforms_from_raw(raw) * cum[-1]
        return np.searchsorted(cum, x, side="right").astype(np.int64) + 1

    def uniformity_within_zone(self) -> bool:
        """Invariant: every week in a zone is equally likely."""
        weights = self.weekly_weights()
        for zone, weeks in self.zone_weeks.items():
            values = {round(weights[w - 1], 12) for w in weeks}
            if len(values) != 1:
                return False
        return True


@lru_cache(maxsize=1)
def _weekly_cumulative() -> tuple[float, ...]:
    acc = 0.0
    cumulative = []
    for w in SalesDateDistribution().weekly_weights():
        acc += w
        cumulative.append(acc)
    return tuple(cumulative)


def gaussian_sales_pdf(x: float, mu: float = 200.0, sigma: float = 50.0) -> float:
    """The synthetic sales distribution of Figure 3 (a Normal density,
    the paper's example of a pure synthetic alternative)."""
    return math.exp(-((x - mu) ** 2) / (2 * sigma**2)) / (sigma * math.sqrt(2 * math.pi))


# ---------------------------------------------------------------------------
# real-world word domains ("common data skews, such as ... frequent names")
# ---------------------------------------------------------------------------

#: (value, relative frequency) — loosely the US census frequency ranking
FIRST_NAMES = [
    ("James", 331), ("Mary", 338), ("John", 326), ("Patricia", 159),
    ("Robert", 314), ("Jennifer", 146), ("Michael", 354), ("Linda", 172),
    ("William", 246), ("Elizabeth", 94), ("David", 280), ("Barbara", 176),
    ("Richard", 223), ("Susan", 113), ("Joseph", 148), ("Jessica", 105),
    ("Thomas", 138), ("Sarah", 103), ("Charles", 123), ("Karen", 100),
    ("Christopher", 120), ("Nancy", 97), ("Daniel", 118), ("Lisa", 96),
    ("Matthew", 108), ("Margaret", 76), ("Anthony", 72), ("Betty", 66),
    ("Mark", 81), ("Sandra", 63), ("Donald", 84), ("Ashley", 64),
    ("Steven", 78), ("Dorothy", 61), ("Paul", 72), ("Kimberly", 62),
    ("Andrew", 70), ("Emily", 60), ("Joshua", 60), ("Donna", 55),
]

LAST_NAMES = [
    ("Smith", 2376), ("Johnson", 1857), ("Williams", 1534), ("Brown", 1380),
    ("Jones", 1362), ("Garcia", 858), ("Miller", 1127), ("Davis", 1072),
    ("Rodriguez", 804), ("Martinez", 775), ("Hernandez", 706), ("Lopez", 621),
    ("Gonzalez", 597), ("Wilson", 783), ("Anderson", 762), ("Thomas", 710),
    ("Taylor", 720), ("Moore", 698), ("Jackson", 666), ("Martin", 672),
    ("Lee", 605), ("Perez", 488), ("Thompson", 644), ("White", 639),
    ("Harris", 593), ("Sanchez", 441), ("Clark", 548), ("Ramirez", 388),
    ("Lewis", 531), ("Robinson", 529), ("Walker", 501), ("Young", 465),
    ("Allen", 442), ("King", 438), ("Wright", 440), ("Scott", 420),
    ("Torres", 325), ("Nguyen", 310), ("Hill", 434), ("Flores", 318),
]

STATES = [
    ("CA", 120), ("TX", 85), ("NY", 68), ("FL", 62), ("IL", 45), ("PA", 44),
    ("OH", 41), ("MI", 36), ("GA", 30), ("NC", 29), ("NJ", 30), ("VA", 26),
    ("WA", 22), ("MA", 23), ("IN", 22), ("AZ", 19), ("TN", 20), ("MO", 20),
    ("MD", 19), ("WI", 19), ("MN", 18), ("CO", 16), ("AL", 16), ("SC", 14),
    ("LA", 16), ("KY", 15), ("OR", 13), ("OK", 12), ("CT", 12), ("IA", 11),
    ("MS", 10), ("AR", 10), ("KS", 10), ("UT", 8), ("NV", 7), ("NM", 7),
    ("WV", 7), ("NE", 6), ("ID", 5), ("ME", 5), ("NH", 5), ("HI", 4),
    ("RI", 4), ("MT", 3), ("DE", 3), ("SD", 3), ("ND", 3), ("AK", 2),
    ("VT", 2), ("WY", 2),
]

#: the county domain holds roughly 1800 values nation-wide (§3.1); it is
#: synthesized as "<seed name> County" and *scaled down* for small tables
_COUNTY_SEEDS = [
    "Williamson", "Walker", "Ziebach", "Fairfield", "Bronx", "Maverick",
    "Mobile", "Huron", "Kittitas", "Mesa", "Dauphin", "Levy", "Barrow",
    "Oglethorpe", "Pennington", "Sumner", "Jackson", "Daviess", "Morgan",
    "Greene", "Franklin", "Perry", "Pulaski", "Macon", "Marion", "Union",
    "Clay", "Pike", "Monroe", "Shelby",
]

CITIES = [
    "Midway", "Fairview", "Oak Grove", "Five Points", "Oakland", "Riverside",
    "Salem", "Georgetown", "Greenville", "Marion", "Centerville", "Springdale",
    "Franklin", "Clinton", "Bridgeport", "Lakeside", "Union", "Wildwood",
    "Liberty", "Glendale", "Lebanon", "Sulphur Springs", "Pleasant Grove",
    "Mount Olive", "Shady Grove", "Highland Park", "Pine Grove", "Cedar Grove",
    "Harmony", "Antioch", "Concord", "Friendship", "Crossroads", "Edgewood",
    "Hamilton", "Ashland", "Belmont", "Bethel", "Brownsville", "Buena Vista",
]

COUNTRIES = ["United States"]

STREET_NAMES = [
    "Main", "Oak", "Park", "Elm", "Maple", "Cedar", "Pine", "Lake", "Hill",
    "Walnut", "Spring", "North", "Ridge", "Church", "Willow", "Mill",
    "Sunset", "Railroad", "Jackson", "West", "South", "Highland", "Forest",
    "Center", "Washington", "College", "Green", "Lincoln", "Smith", "River",
    "Meadow", "Broadway", "Locust", "Poplar", "Dogwood", "Franklin",
    "Johnson", "Chestnut", "Sycamore", "Valley",
]

STREET_TYPES = [
    "Street", "Avenue", "Boulevard", "Circle", "Court", "Drive", "Lane",
    "Parkway", "Place", "Road", "Way",
]

SALUTATIONS = [("Mr.", 40), ("Mrs.", 25), ("Ms.", 20), ("Dr.", 10), ("Sir", 5)]

EDUCATION = [
    "Primary", "Secondary", "College", "2 yr Degree", "4 yr Degree",
    "Advanced Degree", "Unknown",
]

MARITAL_STATUS = ["M", "S", "D", "W", "U"]
GENDERS = ["M", "F"]
CREDIT_RATINGS = ["Low Risk", "Good", "High Risk", "Unknown"]
BUY_POTENTIAL = ["0-500", "501-1000", "1001-5000", "5001-10000", ">10000", "Unknown"]

VEHICLE_COUNTS = [-1, 0, 1, 2, 3, 4]

COLORS = [
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
    "chiffon", "chocolate", "coral", "cornflower", "cornsilk", "cream", "cyan",
    "dark", "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest",
    "frosted", "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew",
    "hot", "indian", "ivory", "khaki", "lace", "lavender", "lawn", "lemon",
    "light", "lime", "linen", "magenta", "maroon", "medium",
]

UNITS = [
    "Unknown", "Each", "Dozen", "Case", "Pallet", "Gross", "Ton", "Oz",
    "Lb", "Bunch", "Bundle", "Box", "Carton", "Cup", "Dram", "Gram", "Pound",
    "Tbl", "Tsp", "N/A",
]

SIZES = ["petite", "small", "medium", "large", "extra large", "economy", "N/A"]

CONTAINERS = ["Unknown", "Tub", "Tube", "Box", "Bag", "Pouch", "Wrap"]

MEAL_TIMES = ["breakfast", "lunch", "dinner", ""]
SHIFTS = ["first", "second", "third"]
SUB_SHIFTS = ["morning", "afternoon", "evening", "night"]

SHIP_MODE_TYPES = ["EXPRESS", "NEXT DAY", "OVERNIGHT", "REGULAR", "TWO DAY"]
SHIP_MODE_CODES = ["AIR", "SURFACE", "SEA"]
SHIP_CARRIERS = [
    "UPS", "FEDEX", "AIRBORNE", "USPS", "DHL", "TBS", "ZHOU", "ZOUROS",
    "MSC", "LATVIAN", "ALLIANCE", "BARIAN", "BOXBUNDLES", "CARGO", "DIAMOND",
    "GERMA", "GREAT EASTERN", "HARMSTORF", "ORIENTAL", "RUPEKSA",
]

RETURN_REASONS = [
    "Package was damaged", "Stopped working", "Did not fit",
    "Found a better price in a store", "Not the product that was ordered",
    "Parts missing", "Does not work with a product that I have",
    "Gift exchange", "Did not like the color", "Did not like the model",
    "Did not like the make", "Did not like the warranty", "No service location",
    "Unauthorized purchase", "Duplicate purchase", "Lost my job",
    "Wrong size", "Changed my mind", "Ordered too many", "Not working any more",
]

PROMO_PURPOSES = ["Unknown", "New Product", "Seasonal", "Clearance", "Holiday"]

#: word pool for Gaussian word selection (item descriptions etc.)
DESCRIPTION_WORDS = [
    "able", "about", "above", "according", "across", "actually", "additional",
    "adequate", "advanced", "against", "agricultural", "alone", "ancient",
    "annual", "apparent", "appropriate", "available", "basic", "beautiful",
    "big", "bright", "broad", "capable", "careful", "central", "certain",
    "cheap", "chief", "civil", "clean", "clear", "close", "cold", "commercial",
    "common", "complete", "complex", "considerable", "constant", "contemporary",
    "content", "continuous", "conventional", "correct", "critical", "crucial",
    "cultural", "current", "daily", "dark", "dear", "deep", "democratic",
    "different", "difficult", "direct", "distinct", "domestic", "double",
    "dramatic", "dry", "due", "early", "eastern", "easy", "economic",
    "effective", "elderly", "electric", "electronic", "emotional", "empty",
    "enormous", "entire", "environmental", "equal", "essential", "exact",
]


def cumulative_weights(pairs) -> tuple[list, list[float]]:
    """Split (value, weight) pairs into values and a cumulative table for
    :meth:`RandomStream.weighted_index`."""
    values = [v for v, _ in pairs]
    cumulative: list[float] = []
    acc = 0.0
    for _, w in pairs:
        acc += w
        cumulative.append(acc)
    return values, cumulative


def county_domain(size: int) -> list[str]:
    """The scaled county domain (§3.1: the full domain holds ~1800 values
    and must be scaled down for small tables such as store)."""
    full = []
    for i in range(1800):
        seed = _COUNTY_SEEDS[i % len(_COUNTY_SEEDS)]
        suffix = "" if i < len(_COUNTY_SEEDS) else f" {i // len(_COUNTY_SEEDS)}"
        full.append(f"{seed}{suffix} County")
    return full[: max(1, min(size, len(full)))]


def gaussian_word_indices(rng: RandomStream, count: int, mu_index: float | None = None) -> np.ndarray:
    """Vectorized Gaussian word-index selection: ``count`` indexes into
    the word pool clustering around the mean (2 draws per word)."""
    n = len(DESCRIPTION_WORDS)
    mu = mu_index if mu_index is not None else n / 2
    z = rng.gaussian_batch(count, mu, n / 6)
    return np.clip(np.rint(z).astype(np.int64), 0, n - 1)


def gaussian_words(rng: RandomStream, count: int, mu_index: float | None = None) -> str:
    """Gaussian word selection (§3.2: "word selections with a Gaussian
    distribution"): indexes into the word pool cluster around the mean."""
    pool = _word_pool()
    return " ".join(pool[gaussian_word_indices(rng, count, mu_index)])


def gaussian_words_batch(
    rng: RandomStream, counts: np.ndarray, mu_index: float | None = None
) -> np.ndarray:
    """One Gaussian word phrase per row — ``counts[i]`` words for row
    ``i`` — drawn from a single batch (2 draws per word, row order), so
    hot loops like the item description column cost one numpy kernel
    instead of one small batch per row."""
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    words = _word_pool()[gaussian_word_indices(rng, total, mu_index)]
    bounds = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=bounds[1:])
    return np.asarray(
        [" ".join(words[bounds[i] : bounds[i + 1]]) for i in range(len(counts))],
        dtype=object,
    )


@lru_cache(maxsize=1)
def _word_pool() -> np.ndarray:
    return np.asarray(DESCRIPTION_WORDS, dtype=object)
