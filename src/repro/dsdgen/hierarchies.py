"""The item merchandise hierarchy (§3.3.1, Figure 5).

TPC-DS hierarchies are strict single-inheritance trees: every brand
belongs to exactly one class, every class to exactly one category.
``ItemHierarchy`` materializes the category → class → brand tree with
set cardinalities per level and provides the deterministic assignment
used by the item dimension generator.
"""

from __future__ import annotations

from dataclasses import dataclass

from .rng import RandomStream

#: category -> classes (the classic TPC-DS merchandise hierarchy)
CATEGORY_CLASSES: dict[str, list[str]] = {
    "Books": ["arts", "business", "computers", "cooking", "entertainments",
              "fiction", "history", "home repair", "mystery", "parenting",
              "reference", "romance", "science", "self-help", "sports",
              "travel"],
    "Children": ["infants", "newborn", "school-uniforms", "toddlers"],
    "Electronics": ["audio", "automotive", "cameras", "camcorders", "dvd/vcr players",
                    "karoke", "memory", "monitors", "musical", "personal",
                    "portable", "scanners", "stereo", "televisions", "wireless"],
    "Home": ["accent", "bathroom", "bedding", "blinds/shades", "curtains/drapes",
             "decor", "flatware", "furniture", "glassware", "kids", "lighting",
             "mattresses", "paint", "rugs", "tables", "wallpaper"],
    "Jewelry": ["birdal", "costume", "custom", "diamonds", "earings", "estate",
                "gold", "jewelry boxes", "loose stones", "mens watch", "pendants",
                "rings", "semi-precious", "womens watch"],
    "Men": ["accessories", "pants", "shirts", "sports-apparel"],
    "Music": ["classical", "country", "pop", "rock"],
    "Shoes": ["athletic", "kids", "mens", "womens"],
    "Sports": ["archery", "athletic shoes", "baseball", "basketball", "camping",
               "fishing", "fitness", "football", "golf", "guns", "hockey",
               "optics", "outdoor", "pools", "sailing", "tennis"],
    "Women": ["dresses", "fragrances", "maternity", "swimwear"],
}

#: brand-name prefixes combined per class to synthesize brand names
_BRAND_MAKERS = [
    "amalg", "edu pack", "exporti", "import", "scholar", "brand", "corp",
    "univ", "name", "max",
]

BRANDS_PER_CLASS = 10


@dataclass(frozen=True)
class Brand:
    brand_id: int
    name: str
    class_id: int
    class_name: str
    category_id: int
    category_name: str


class ItemHierarchy:
    """The materialized category → class → brand tree."""

    def __init__(self, brands_per_class: int = BRANDS_PER_CLASS):
        self.categories = list(CATEGORY_CLASSES)
        self.brands: list[Brand] = []
        self._by_class: dict[int, list[Brand]] = {}
        class_id = 0
        for cat_id, category in enumerate(self.categories, start=1):
            for class_name in CATEGORY_CLASSES[category]:
                class_id += 1
                members = []
                for b in range(1, brands_per_class + 1):
                    maker = _BRAND_MAKERS[(b - 1) % len(_BRAND_MAKERS)]
                    brand = Brand(
                        brand_id=class_id * 1000 + b,
                        name=f"{maker} #{class_id}",
                        class_id=class_id,
                        class_name=class_name,
                        category_id=cat_id,
                        category_name=category,
                    )
                    members.append(brand)
                    self.brands.append(brand)
                self._by_class[class_id] = members

    @property
    def num_categories(self) -> int:
        return len(self.categories)

    @property
    def num_classes(self) -> int:
        return len(self._by_class)

    @property
    def num_brands(self) -> int:
        return len(self.brands)

    def sample_brand(self, rng: RandomStream) -> Brand:
        return rng.choice(self.brands)

    def verify_single_inheritance(self) -> bool:
        """Every brand maps to exactly one class, every class to exactly
        one category (the Figure 5 invariant)."""
        class_to_category: dict[int, int] = {}
        brand_to_class: dict[int, int] = {}
        for brand in self.brands:
            if brand_to_class.setdefault(brand.brand_id, brand.class_id) != brand.class_id:
                return False
            if (
                class_to_category.setdefault(brand.class_id, brand.category_id)
                != brand.category_id
            ):
                return False
        return True
