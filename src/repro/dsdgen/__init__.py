"""dsdgen — the TPC-DS data generator (pure Python reproduction)."""

from .context import GeneratorContext
from .distributions import SalesDateDistribution, gaussian_sales_pdf
from .generator import DsdGen, GeneratedData, build_database, load_from_flat_files, load_tables
from .hierarchies import ItemHierarchy
from .rng import RandomStream, RandomStreamFactory
from .scaling import (
    OFFICIAL_SCALE_FACTORS,
    ROW_COUNT_ANCHORS,
    ScaleFactorError,
    ScalingModel,
    minimum_streams,
)

__all__ = [
    "DsdGen",
    "GeneratedData",
    "GeneratorContext",
    "build_database",
    "load_tables",
    "load_from_flat_files",
    "ScalingModel",
    "ScaleFactorError",
    "OFFICIAL_SCALE_FACTORS",
    "ROW_COUNT_ANCHORS",
    "minimum_streams",
    "SalesDateDistribution",
    "gaussian_sales_pdf",
    "ItemHierarchy",
    "RandomStream",
    "RandomStreamFactory",
]
