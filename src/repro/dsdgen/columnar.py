"""Column-major generated tables.

The vectorized generators produce whole columns (numpy arrays plus a
null mask) instead of Python row tuples.  A :class:`ColumnarTable`
carries those columns in schema order, concatenates across parallel
chunks, converts to runtime :class:`~repro.engine.vector.Vector`
columns for the fast load path, and materializes row tuples only when
row-oriented consumers (tests, the flat-file round-trip reader) ask.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..engine.types import Kind, TableSchema
from ..engine.vector import _FILL, _NUMPY_DTYPE, Vector

#: numpy dtypes a generated column may arrive in, per schema kind
_KIND_DTYPE = {
    Kind.INT: np.int64,
    Kind.DATE: np.int64,
    Kind.FLOAT: np.float64,
    Kind.BOOL: bool,
    Kind.STR: object,
}


@dataclass
class ColumnarTable:
    """One generated table held column-major.

    ``columns`` maps column name (schema order) to a data array;
    ``nulls`` holds an optional boolean mask per column (absent means
    no NULLs).  Null slots in the data array hold the engine's
    deterministic fill value so downstream numpy ops never see None.
    """

    schema: TableSchema
    columns: dict[str, np.ndarray] = field(default_factory=dict)
    nulls: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def num_rows(self) -> int:
        first = next(iter(self.columns.values()), None)
        return 0 if first is None else len(first)

    def set(self, name: str, data: np.ndarray, null: Optional[np.ndarray] = None) -> None:
        kind = self.schema.column(name).kind
        data = np.asarray(data)
        if data.dtype != _KIND_DTYPE[kind]:
            data = data.astype(_KIND_DTYPE[kind])
        if null is not None and null.any():
            data = data.copy()
            data[null] = _FILL[kind]
            self.nulls[name] = null
        self.columns[name] = data

    def finish(self) -> "ColumnarTable":
        """Validate completeness and rectangularity after generation."""
        missing = [c.name for c in self.schema.columns if c.name not in self.columns]
        if missing:
            raise ValueError(f"{self.schema.name}: missing columns {missing}")
        lengths = {len(v) for v in self.columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"{self.schema.name}: ragged columns {lengths}")
        return self

    # -- conversions ---------------------------------------------------------

    def to_vectors(self) -> dict[str, Vector]:
        """Engine vectors for the columnar load fast path (zero-copy for
        the data arrays; null masks are materialized where absent)."""
        out: dict[str, Vector] = {}
        n = self.num_rows
        for col in self.schema.columns:
            data = self.columns[col.name]
            null = self.nulls.get(col.name)
            if null is None:
                null = np.zeros(n, dtype=bool)
            if data.dtype != _NUMPY_DTYPE[col.kind]:
                data = data.astype(_NUMPY_DTYPE[col.kind])
            out[col.name] = Vector(col.kind, data, null)
        return out

    def to_rows(self) -> list[tuple]:
        """Materialize Python row tuples (``None`` for NULL slots)."""
        cols = []
        for col in self.schema.columns:
            values = self.columns[col.name].tolist()
            null = self.nulls.get(col.name)
            if null is not None and null.any():
                for i in np.flatnonzero(null):
                    values[i] = None
            cols.append(values)
        return list(zip(*cols)) if cols else []

    @staticmethod
    def concat(parts: Sequence["ColumnarTable"]) -> "ColumnarTable":
        """Concatenate chunk outputs in order (the parallel contract:
        chunks concatenate to the identical serial result)."""
        if not parts:
            raise ValueError("cannot concat zero chunks")
        schema = parts[0].schema
        out = ColumnarTable(schema)
        for col in schema.columns:
            name = col.name
            out.columns[name] = np.concatenate([p.columns[name] for p in parts])
            if any(name in p.nulls for p in parts):
                out.nulls[name] = np.concatenate(
                    [
                        p.nulls.get(name, np.zeros(p.num_rows, dtype=bool))
                        for p in parts
                    ]
                )
        return out

    @staticmethod
    def from_rows(schema: TableSchema, rows: Sequence[Sequence]) -> "ColumnarTable":
        """Columnarize row tuples (used when a scalar generator's output
        joins the columnar pipeline)."""
        out = ColumnarTable(schema)
        n = len(rows)
        for idx, col in enumerate(schema.columns):
            values = [r[idx] for r in rows]
            null = np.fromiter((v is None for v in values), dtype=bool, count=n)
            if null.any():
                fill = _FILL[col.kind]
                values = [fill if v is None else v for v in values]
                out.columns[col.name] = np.asarray(values, dtype=_KIND_DTYPE[col.kind])
                out.nulls[col.name] = null
            else:
                out.columns[col.name] = np.asarray(values, dtype=_KIND_DTYPE[col.kind])
        return out
