"""Dimension-table generators.

Each ``gen_<table>`` produces row tuples in schema column order and
registers the table's surrogate-key pool on the context so fact
generators can sample foreign keys. History-keeping dimensions (item,
store, call_center, web_page, web_site) are generated *with SCD
history already present* — up to 3 revisions per business key with
``rec_start_date`` / ``rec_end_date`` ranges — because §3.3.2 requires
the initial population to contain the effects of previous maintenance.
"""

from __future__ import annotations

import datetime as _dt
from typing import Iterable, Optional

import numpy as np

from ..engine.types import date_to_epoch_days
from ..schema import ALL_TABLES
from . import distributions as D
from .columnar import ColumnarTable
from .context import GeneratorContext
from .rng import RandomStream

#: share of SCD entities with 1, 2, 3 revisions
_REVISION_WEIGHTS = ((1, 50), (2, 30), (3, 20))


def _flag(rng: RandomStream, p_true: float = 0.5) -> str:
    return "Y" if rng.uniform() < p_true else "N"


def _weighted(rng: RandomStream, pairs):
    values, cumulative = D.cumulative_weights(pairs)
    return values[rng.weighted_index(cumulative)]


def scd_plan(ctx: GeneratorContext, table: str, total_rows: int):
    """Assign revisions to entities until the row budget is met.

    Yields ``(entity, revision_index, revision_count, start_days,
    end_days_or_None)`` where the day values are epoch days. Revisions
    partition the sales window; the current revision has an open end.
    """
    rng = ctx.stream(table, "scd")
    window_start = date_to_epoch_days(ctx.calendar.start)
    window_end = date_to_epoch_days(ctx.calendar.end)
    produced = 0
    entity = 0
    while produced < total_rows:
        entity += 1
        revisions = _weighted(rng, _REVISION_WEIGHTS)
        revisions = min(revisions, total_rows - produced)
        cuts = sorted(
            rng.uniform_int(window_start + 1, window_end - 1)
            for _ in range(revisions - 1)
        )
        bounds = [window_start] + cuts + [None]
        for rev in range(revisions):
            start = bounds[rev]
            end = bounds[rev + 1]
            yield entity, rev, revisions, start, end
        produced += revisions


# ---------------------------------------------------------------------------
# static dimensions
# ---------------------------------------------------------------------------


def gen_date_dim(ctx: GeneratorContext) -> list[tuple]:
    """The calendar dimension (static, one row per day)."""
    rows = []
    n = ctx.rows("date_dim")
    day_names = ["Monday", "Tuesday", "Wednesday", "Thursday", "Friday",
                 "Saturday", "Sunday"]
    today = _dt.date(2003, 1, 8)  # the spec's frozen "current date"
    for offset in range(n):
        d = ctx.calendar.date_at(offset)
        sk = ctx.calendar.sk_at(offset)
        dow = d.weekday()
        quarter = (d.month - 1) // 3 + 1
        first_dom = ctx.calendar.sk_of_date(d.replace(day=1))
        next_month = (d.replace(day=28) + _dt.timedelta(days=4)).replace(day=1)
        last_dom_date = next_month - _dt.timedelta(days=1)
        rows.append((
            sk,
            ctx.business_key("AAAA", sk),
            date_to_epoch_days(d),
            (d.year - 1900) * 12 + d.month - 1,
            (date_to_epoch_days(d) + 3) // 7,
            (d.year - 1900) * 4 + quarter - 1,
            d.year,
            dow,
            d.month,
            d.day,
            quarter,
            d.year,
            (d.year - 1900) * 4 + quarter - 1,
            (date_to_epoch_days(d) + 3) // 7,
            day_names[dow],
            f"{d.year}Q{quarter}",
            "Y" if (d.month, d.day) in ((1, 1), (7, 4), (12, 25)) else "N",
            "Y" if dow >= 5 else "N",
            "Y" if (d.month, d.day) in ((1, 2), (7, 5), (12, 26)) else "N",
            first_dom,
            ctx.calendar.sk_of_date(last_dom_date)
            if last_dom_date <= ctx.calendar.end
            else ctx.calendar.sk_at(n - 1),
            sk - 365,
            sk - 91,
            "Y" if d == today else "N",
            "N",
            "Y" if (d.year, d.month) == (today.year, today.month) else "N",
            "Y" if (d.year, quarter) == (today.year, (today.month - 1) // 3 + 1) else "N",
            "Y" if d.year == today.year else "N",
        ))
    ctx.register_keys("date_dim", n)
    return rows


def gen_time_dim(ctx: GeneratorContext) -> list[tuple]:
    """The time-of-day dimension (static)."""
    n = ctx.rows("time_dim")
    step = max(1, 86_400 // n)
    rows = []
    for i in range(n):
        seconds = i * step
        hour = seconds // 3600
        minute = (seconds % 3600) // 60
        second = seconds % 60
        shift = D.SHIFTS[hour // 8]
        sub_shift = D.SUB_SHIFTS[min(hour // 6, 3)]
        if 6 <= hour < 9:
            meal = "breakfast"
        elif 11 <= hour < 14:
            meal = "lunch"
        elif 17 <= hour < 21:
            meal = "dinner"
        else:
            meal = None
        rows.append((
            i + 1,
            ctx.business_key("AAAA", i + 1),
            seconds,
            hour,
            minute,
            second,
            "AM" if hour < 12 else "PM",
            shift,
            sub_shift,
            meal,
        ))
    ctx.register_keys("time_dim", n)
    return rows


def gen_reason(ctx: GeneratorContext) -> list[tuple]:
    """Return-reason dimension (static)."""
    n = ctx.rows("reason")
    rows = []
    for i in range(n):
        desc = D.RETURN_REASONS[i % len(D.RETURN_REASONS)]
        if i >= len(D.RETURN_REASONS):
            desc = f"{desc} ({i // len(D.RETURN_REASONS)})"
        rows.append((i + 1, ctx.business_key("AAAA", i + 1), desc))
    ctx.register_keys("reason", n)
    return rows


def gen_ship_mode(ctx: GeneratorContext) -> list[tuple]:
    """Ship-mode dimension (static)."""
    n = ctx.rows("ship_mode")
    rng = ctx.stream("ship_mode", "contract")
    rows = []
    for i in range(n):
        rows.append((
            i + 1,
            ctx.business_key("AAAA", i + 1),
            D.SHIP_MODE_TYPES[i % len(D.SHIP_MODE_TYPES)],
            D.SHIP_MODE_CODES[(i // len(D.SHIP_MODE_TYPES)) % len(D.SHIP_MODE_CODES)],
            D.SHIP_CARRIERS[i % len(D.SHIP_CARRIERS)],
            "".join(chr(ord("A") + rng.uniform_int(0, 25)) for _ in range(10)),
        ))
    ctx.register_keys("ship_mode", n)
    return rows


def gen_income_band(ctx: GeneratorContext) -> list[tuple]:
    """Income-band dimension: twenty 10k-wide bands (static)."""
    n = ctx.rows("income_band")
    rows = []
    for i in range(n):
        lower = i * 10_000 + 1 if i else 0
        rows.append((i + 1, lower, (i + 1) * 10_000))
    ctx.register_keys("income_band", n)
    return rows


# ---------------------------------------------------------------------------
# demographic snowflake
# ---------------------------------------------------------------------------


def gen_customer_demographics(ctx: GeneratorContext) -> list[tuple]:
    """The cdemo table is a cross product of its domains (that is why its
    cardinality is fixed); at model scale we enumerate a prefix."""
    n = ctx.rows("customer_demographics")
    rows = []
    sk = 0
    estimates = list(range(500, 10_001, 500))
    counts = list(range(0, 7))
    done = False
    while not done:
        for gender in D.GENDERS:
            for marital in D.MARITAL_STATUS:
                for education in D.EDUCATION:
                    for estimate in estimates:
                        for credit in D.CREDIT_RATINGS:
                            for dep in counts:
                                sk += 1
                                rows.append((
                                    sk, gender, marital, education, estimate,
                                    credit, dep, dep % 5, dep % 3,
                                ))
                                if sk >= n:
                                    done = True
                                if done:
                                    break
                            if done:
                                break
                        if done:
                            break
                    if done:
                        break
                if done:
                    break
            if done:
                break
        if sk == 0:
            break
    ctx.register_keys("customer_demographics", len(rows))
    return rows


def gen_household_demographics(ctx: GeneratorContext) -> list[tuple]:
    """Household demographics, snowflaked onto income_band."""
    n = ctx.rows("household_demographics")
    bands = max(ctx.key_pools.get("income_band", 20), 1)
    rows = []
    for i in range(n):
        rows.append((
            i + 1,
            (i % bands) + 1,
            D.BUY_POTENTIAL[i % len(D.BUY_POTENTIAL)],
            i % 10,
            D.VEHICLE_COUNTS[i % len(D.VEHICLE_COUNTS)],
        ))
    ctx.register_keys("household_demographics", n)
    return rows


def _address_fields(ctx: GeneratorContext, rng: RandomStream, counties: list[str]):
    street_number = str(rng.uniform_int(1, 999))
    street_name = f"{rng.choice(D.STREET_NAMES)} {rng.choice(D.STREET_NAMES)}"
    street_type = rng.choice(D.STREET_TYPES)
    suite = f"Suite {rng.uniform_int(0, 99) * 10}"
    city = rng.choice(D.CITIES)
    county = rng.choice(counties)
    state = _weighted(rng, D.STATES)
    zip_code = f"{rng.uniform_int(10000, 99999):05d}"
    country = D.COUNTRIES[0]
    gmt = float(rng.uniform_int(-8, -5))
    return (street_number, street_name, street_type, suite, city, county,
            state, zip_code, country, gmt)


def _business_keys(prefix: str, entities: "np.ndarray") -> "np.ndarray":
    """Vectorized :meth:`GeneratorContext.business_key`."""
    fmt = f"{prefix}%0{16 - len(prefix)}d"
    return np.char.mod(fmt, entities).astype(object)


def gen_customer_address(ctx: GeneratorContext) -> ColumnarTable:
    """Customer addresses with the scaled county domain (3.1).

    Vectorized column-major: each field draws one batch for the whole
    table, in the field order of the old per-row loop (a different —
    but still fully deterministic — stream schedule)."""
    n = ctx.rows("customer_address")
    rng = ctx.stream("customer_address", "fields")
    counties = D.county_domain(max(10, min(1800, n // 50)))
    out = ColumnarTable(ALL_TABLES["customer_address"])
    sks = np.arange(1, n + 1, dtype=np.int64)
    out.set("ca_address_sk", sks)
    out.set("ca_address_id", _business_keys("AAAA", sks))
    out.set("ca_street_number", np.char.mod("%d", rng.uniform_int_batch(1, 999, n)).astype(object))
    name_a = rng.choice_batch(D.STREET_NAMES, n).astype(str)
    name_b = rng.choice_batch(D.STREET_NAMES, n).astype(str)
    out.set("ca_street_name", np.char.add(np.char.add(name_a, " "), name_b).astype(object))
    out.set("ca_street_type", rng.choice_batch(D.STREET_TYPES, n))
    out.set("ca_suite_number", np.char.mod("Suite %d", rng.uniform_int_batch(0, 99, n) * 10).astype(object))
    out.set("ca_city", rng.choice_batch(D.CITIES, n))
    out.set("ca_county", rng.choice_batch(counties, n))
    state_values, state_cum = D.cumulative_weights(D.STATES)
    out.set("ca_state", np.asarray(state_values, dtype=object)[rng.weighted_index_batch(state_cum, n)])
    out.set("ca_zip", np.char.mod("%05d", rng.uniform_int_batch(10000, 99999, n)).astype(object))
    out.set("ca_country", np.full(n, D.COUNTRIES[0], dtype=object))
    out.set("ca_gmt_offset", rng.uniform_int_batch(-8, -5, n).astype(np.float64))
    out.set("ca_location_type", rng.choice_batch(["apartment", "condo", "single family"], n))
    ctx.register_keys("customer_address", n)
    return out.finish()


def gen_customer(ctx: GeneratorContext) -> ColumnarTable:
    """Customers with frequency-weighted real names (3.2).

    Vectorized column-major like :func:`gen_customer_address`."""
    n = ctx.rows("customer")
    rng = ctx.stream("customer", "fields")
    first_names, first_cum = D.cumulative_weights(D.FIRST_NAMES)
    last_names, last_cum = D.cumulative_weights(D.LAST_NAMES)
    date_pool = ctx.key_pools["date_dim"]
    out = ColumnarTable(ALL_TABLES["customer"])
    sks = np.arange(1, n + 1, dtype=np.int64)
    first = np.asarray(first_names, dtype=object)[rng.weighted_index_batch(first_cum, n)]
    last = np.asarray(last_names, dtype=object)[rng.weighted_index_batch(last_cum, n)]
    birth_year = rng.uniform_int_batch(1924, 1992, n)
    first_sales = ctx.calendar.sk_at(0) + rng.uniform_int_batch(0, date_pool - 1, n)
    out.set("c_customer_sk", sks)
    out.set("c_customer_id", _business_keys("AAAA", sks))
    for column, pool in (
        ("c_current_cdemo_sk", "customer_demographics"),
        ("c_current_hdemo_sk", "household_demographics"),
        ("c_current_addr_sk", "customer_address"),
    ):
        null = rng.uniform_batch(n) < 0.02
        keys = rng.uniform_int_batch(1, max(ctx.key_pools.get(pool, 1), 1), n)
        out.set(column, keys, null)
    out.set(
        "c_first_shipto_date_sk",
        ctx.clamp_date_sk_batch(first_sales + rng.uniform_int_batch(0, 30, n)),
    )
    out.set("c_first_sales_date_sk", first_sales)
    sal_values, sal_cum = D.cumulative_weights(D.SALUTATIONS)
    salutation = np.asarray(sal_values, dtype=object)[rng.weighted_index_batch(sal_cum, n)]
    out.set("c_salutation", salutation, rng.uniform_batch(n) < 0.01)
    out.set("c_first_name", first, rng.uniform_batch(n) < 0.01)
    out.set("c_last_name", last, rng.uniform_batch(n) < 0.01)
    out.set("c_preferred_cust_flag", np.where(rng.uniform_batch(n) < 0.5, "Y", "N").astype(object))
    out.set("c_birth_day", rng.uniform_int_batch(1, 28, n))
    out.set("c_birth_month", rng.uniform_int_batch(1, 12, n))
    out.set("c_birth_year", birth_year)
    out.set("c_birth_country", np.full(n, D.COUNTRIES[0], dtype=object))
    out.set("c_login", np.full(n, "", dtype=object), np.ones(n, dtype=bool))
    email = np.char.add(
        np.char.add(np.char.add(first.astype(str), "."), np.char.add(last.astype(str), ".")),
        np.char.add(np.char.mod("%d", sks), "@example.com"),
    )
    out.set("c_email_address", np.asarray([e[:50] for e in email], dtype=object))
    out.set("c_last_review_date_sk", ctx.calendar.sk_at(0) + rng.uniform_int_batch(0, date_pool - 1, n))
    ctx.register_keys("customer", n)
    return out.finish()


# ---------------------------------------------------------------------------
# history-keeping (type-2 SCD) dimensions
# ---------------------------------------------------------------------------


def gen_item(ctx: GeneratorContext) -> list[tuple]:
    """Item dimension: hierarchy assignment + type-2 SCD history.

    The SCD plan stays scalar; the per-row attribute draws are batched
    column-major (one numpy batch per column, in the old per-row field
    order)."""
    n = ctx.rows("item")
    rng = ctx.stream("item", "fields")
    plan = list(scd_plan(ctx, "item", n))
    m = len(plan)
    brands = [ctx.hierarchy.sample_brand(rng) for _ in range(m)]
    wholesale = np.round(rng.uniform_batch(m) * 99 + 1, 2)
    current_price = np.round(wholesale * (1.0 + rng.uniform_batch(m) * 1.5), 2)
    desc = D.gaussian_words_batch(rng, rng.uniform_int_batch(5, 15, m))
    manufact = rng.uniform_int_batch(1, 1000, m)
    formulation = D.gaussian_words_batch(rng, np.ones(m, dtype=np.int64))
    sizes = rng.choice_batch(D.SIZES, m)
    containers_desc = D.gaussian_words_batch(rng, np.full(m, 2, dtype=np.int64))
    colors = rng.choice_batch(D.COLORS, m)
    units = rng.choice_batch(D.UNITS, m)
    containers = rng.choice_batch(D.CONTAINERS, m)
    manager = rng.uniform_int_batch(1, 100, m)
    product_name = D.gaussian_words_batch(rng, rng.uniform_int_batch(2, 4, m))
    rows = list(zip(
        range(1, m + 1),
        [ctx.business_key("AAAA", entity) for entity, *_ in plan],
        [start for *_, start, _end in plan],
        [end for *_, end in plan],
        desc.tolist(),
        current_price.tolist(),
        wholesale.tolist(),
        [b.brand_id for b in brands],
        [b.name for b in brands],
        [b.class_id for b in brands],
        [b.class_name for b in brands],
        [b.category_id for b in brands],
        [b.category_name for b in brands],
        manufact.tolist(),
        formulation.tolist(),
        sizes.tolist(),
        containers_desc.tolist(),
        colors.tolist(),
        units.tolist(),
        containers.tolist(),
        manager.tolist(),
        product_name.tolist(),
    ))
    ctx.register_keys("item", m)
    return rows


def gen_store(ctx: GeneratorContext) -> list[tuple]:
    """Store dimension (type-2 SCD) with scaled county domain."""
    n = ctx.rows("store")
    rng = ctx.stream("store", "fields")
    counties = D.county_domain(max(5, min(1800, n)))
    rows = []
    sk = 0
    for entity, rev, revisions, start, end in scd_plan(ctx, "store", n):
        sk += 1
        fields = _address_fields(ctx, rng, counties)
        rows.append((
            sk,
            ctx.business_key("AAAA", entity),
            start,
            end,
            ctx.random_date_sk(rng, 0.7),
            rng.choice(["ought", "able", "pri", "ese", "anti", "cally", "ation", "eing", "n st", "bar"]),
            rng.uniform_int(200, 300),
            rng.uniform_int(5_000_000, 9_999_999),
            "8AM-8PM" if rng.uniform() < 0.7 else "8AM-12AM",
            f"{rng.choice([v for v, _ in D.FIRST_NAMES])} {rng.choice([v for v, _ in D.LAST_NAMES])}",
            rng.uniform_int(1, 10),
            "Unknown",
            D.gaussian_words(rng, rng.uniform_int(5, 15)),
            f"{rng.choice([v for v, _ in D.FIRST_NAMES])} {rng.choice([v for v, _ in D.LAST_NAMES])}",
            rng.uniform_int(1, 6),
            "Unknown",
            rng.uniform_int(1, 6),
            "Unknown",
            *fields[:2],
            fields[2],
            fields[3],
            fields[4],
            fields[5],
            fields[6],
            fields[7],
            fields[8],
            fields[9],
            round(rng.uniform() * 0.11, 2),
        ))
    ctx.register_keys("store", sk)
    return rows


def _center_rows(ctx: GeneratorContext, table: str, prefix_fields) -> list[tuple]:
    """Shared shape for call_center and web_site (SCD + address block)."""
    n = ctx.rows(table)
    rng = ctx.stream(table, "fields")
    counties = D.county_domain(30)
    rows = []
    sk = 0
    for entity, rev, revisions, start, end in scd_plan(ctx, table, n):
        sk += 1
        rows.append(tuple(prefix_fields(sk, entity, start, end, rng, counties)))
    ctx.register_keys(table, sk)
    return rows


def gen_call_center(ctx: GeneratorContext) -> list[tuple]:
    """Call-center dimension (type-2 SCD, catalog channel)."""
    def build(sk, entity, start, end, rng, counties):
        fields = _address_fields(ctx, rng, counties)
        manager = f"{rng.choice([v for v, _ in D.FIRST_NAMES])} {rng.choice([v for v, _ in D.LAST_NAMES])}"
        return (
            sk, ctx.business_key("AAAA", entity), start, end,
            ctx.random_date_sk(rng, 0.9),
            ctx.random_date_sk(rng),
            f"{rng.choice(['NY Metro', 'Mid Atlantic', 'North Midwest', 'Pacific Northwest', 'California'])}",
            rng.choice(["small", "medium", "large"]),
            rng.uniform_int(100, 700),
            rng.uniform_int(10_000, 30_000),
            "8AM-8PM",
            manager,
            rng.uniform_int(1, 6),
            D.gaussian_words(rng, 3),
            D.gaussian_words(rng, rng.uniform_int(5, 15)),
            manager,
            rng.uniform_int(1, 6),
            rng.choice(["pri", "cally", "able", "ought", "ese"]),
            rng.uniform_int(1, 6),
            rng.choice(["FAIRVIEW", "MIDWAY"]),
            *fields[:2], fields[2], fields[3], fields[4], fields[5],
            fields[6], fields[7], fields[8], fields[9],
            round(rng.uniform() * 0.11, 2),
        )

    return _center_rows(ctx, "call_center", build)


def gen_web_site(ctx: GeneratorContext) -> list[tuple]:
    """Web-site dimension (type-2 SCD, web channel)."""
    def build(sk, entity, start, end, rng, counties):
        fields = _address_fields(ctx, rng, counties)
        manager = f"{rng.choice([v for v, _ in D.FIRST_NAMES])} {rng.choice([v for v, _ in D.LAST_NAMES])}"
        return (
            sk, ctx.business_key("AAAA", entity), start, end,
            f"site_{entity}",
            ctx.random_date_sk(rng),
            ctx.random_date_sk(rng, 0.9),
            rng.choice(["Unknown", "mail", "general", "premium"]),
            manager,
            rng.uniform_int(1, 6),
            D.gaussian_words(rng, 3),
            D.gaussian_words(rng, rng.uniform_int(5, 15)),
            manager,
            rng.uniform_int(1, 6),
            rng.choice(["pri", "cally", "able", "ought", "ese"]),
            *fields[:2], fields[2], fields[3], fields[4], fields[5],
            fields[6], fields[7], fields[8], fields[9],
            round(rng.uniform() * 0.11, 2),
        )

    return _center_rows(ctx, "web_site", build)


def gen_web_page(ctx: GeneratorContext) -> list[tuple]:
    """Web-page dimension (type-2 SCD, web channel)."""
    n = ctx.rows("web_page")
    rng = ctx.stream("web_page", "fields")
    rows = []
    sk = 0
    for entity, rev, revisions, start, end in scd_plan(ctx, "web_page", n):
        sk += 1
        rows.append((
            sk,
            ctx.business_key("AAAA", entity),
            start,
            end,
            ctx.random_date_sk(rng),
            ctx.random_date_sk(rng),
            _flag(rng, 0.3),
            ctx.sample_fk("customer", rng, 0.8),
            "http://www.foo.com",
            rng.choice(["ad", "bio", "feedback", "general", "order", "protected", "welcome", "dynamic"]),
            rng.uniform_int(100, 8_000),
            rng.uniform_int(2, 25),
            rng.uniform_int(1, 7),
            rng.uniform_int(0, 4),
        ))
    ctx.register_keys("web_page", sk)
    return rows


# ---------------------------------------------------------------------------
# remaining non-history dimensions
# ---------------------------------------------------------------------------


def gen_warehouse(ctx: GeneratorContext) -> list[tuple]:
    """Warehouse dimension, shared by catalog and web."""
    n = ctx.rows("warehouse")
    rng = ctx.stream("warehouse", "fields")
    counties = D.county_domain(30)
    rows = []
    for i in range(n):
        fields = _address_fields(ctx, rng, counties)
        rows.append((
            i + 1,
            ctx.business_key("AAAA", i + 1),
            D.gaussian_words(rng, 2)[:20],
            rng.uniform_int(50_000, 1_000_000),
            *fields,
        ))
    ctx.register_keys("warehouse", n)
    return rows


def gen_catalog_page(ctx: GeneratorContext) -> list[tuple]:
    """Catalog-page dimension (reporting channel)."""
    n = ctx.rows("catalog_page")
    rng = ctx.stream("catalog_page", "fields")
    pages_per_catalog = 100
    days = ctx.rows("date_dim")
    base = ctx.calendar.sk_at(0)
    start = base + rng.uniform_int_batch(0, days - 1, n)
    end = base + rng.uniform_int_batch(0, days - 1, n)
    desc = D.gaussian_words_batch(rng, rng.uniform_int_batch(4, 12, n))
    ptype = rng.choice_batch(["bi-annual", "quarterly", "monthly"], n)
    rows = list(zip(
        range(1, n + 1),
        [ctx.business_key("AAAA", i + 1) for i in range(n)],
        start.tolist(),
        end.tolist(),
        ["DEPARTMENT"] * n,
        [i // pages_per_catalog + 1 for i in range(n)],
        [i % pages_per_catalog + 1 for i in range(n)],
        desc.tolist(),
        ptype.tolist(),
    ))
    ctx.register_keys("catalog_page", n)
    return rows


def gen_promotion(ctx: GeneratorContext) -> list[tuple]:
    """Promotion dimension with channel flags."""
    n = ctx.rows("promotion")
    rng = ctx.stream("promotion", "fields")
    rows = []
    for i in range(n):
        start = ctx.random_date_sk(rng)
        rows.append((
            i + 1,
            ctx.business_key("AAAA", i + 1),
            start,
            None if start is None else ctx.clamp_date_sk(start + rng.uniform_int(10, 60)),
            ctx.sample_fk("item", rng),
            float(rng.uniform_int(100, 1000)),
            rng.uniform_int(1, 3),
            f"promo_{i + 1}",
            _flag(rng, 0.1), _flag(rng, 0.1), _flag(rng, 0.1), _flag(rng, 0.1),
            _flag(rng, 0.1), _flag(rng, 0.1), _flag(rng, 0.1), _flag(rng, 0.1),
            D.gaussian_words(rng, rng.uniform_int(3, 8)),
            rng.choice(D.PROMO_PURPOSES),
            _flag(rng, 0.5),
        ))
    ctx.register_keys("promotion", n)
    return rows


#: generation order respecting intra-dimension references
DIMENSION_ORDER = [
    ("date_dim", gen_date_dim),
    ("time_dim", gen_time_dim),
    ("reason", gen_reason),
    ("ship_mode", gen_ship_mode),
    ("income_band", gen_income_band),
    ("customer_demographics", gen_customer_demographics),
    ("household_demographics", gen_household_demographics),
    ("customer_address", gen_customer_address),
    ("customer", gen_customer),
    ("item", gen_item),
    ("store", gen_store),
    ("call_center", gen_call_center),
    ("web_site", gen_web_site),
    ("web_page", gen_web_page),
    ("warehouse", gen_warehouse),
    ("catalog_page", gen_catalog_page),
    ("promotion", gen_promotion),
]
