"""Flat-file output and loading.

dsdgen emits one ``<table>.dat`` per table: pipe-delimited fields with
a trailing pipe, empty field for NULL, ISO dates. The data-maintenance
workload's "extraction step is assumed and represented in the form of
generated flat files" (§4.2), so the same writer serves the refresh
sets. ``measured_row_statistics`` computes the actual flat-file row
lengths behind Table 1's byte columns.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from ..engine.types import Kind, TableSchema, format_date, parse_date

if TYPE_CHECKING:  # pragma: no cover
    from .columnar import ColumnarTable


#: the kit's NULL convention, pinned explicitly: an *empty field* is
#: NULL for every kind.  A genuine empty string in a STR column — which
#: would otherwise be indistinguishable from NULL — is rendered as two
#: double-quote characters and parsed back to ``""``.  (The generator
#: never emits empty strings, so generated .dat bytes are unchanged;
#: the escape exists so externally produced files round-trip.)
EMPTY_STRING_FIELD = '""'


def _escape_str(value: str) -> str:
    """Escape a STR value for the flat format.  ``""`` marks the empty
    string; a value consisting only of quote characters gets the marker
    appended so it cannot be mistaken for the marker itself."""
    if value == "":
        return EMPTY_STRING_FIELD
    if value.strip('"') == "":
        return value + EMPTY_STRING_FIELD
    return value


def format_field(value, kind: Kind) -> str:
    """Render one value as a flat-file field (empty field = NULL)."""
    if value is None:
        return ""
    if kind is Kind.DATE:
        return format_date(int(value))
    if kind is Kind.FLOAT:
        return f"{value:.2f}"
    if kind is Kind.STR:
        return _escape_str(str(value))
    return str(value)


def parse_field(text: str, kind: Kind):
    """Parse one flat-file field back to a typed value."""
    if text == "":
        return None
    if kind is Kind.INT:
        return int(text)
    if kind is Kind.FLOAT:
        return float(text)
    if kind is Kind.DATE:
        return parse_date(text)
    if kind is Kind.BOOL:
        return text in ("1", "Y", "true", "True")
    if text == EMPTY_STRING_FIELD:
        return ""
    if len(text) >= 3 and text.strip('"') == "":
        return text[:-2]
    return text


def format_row(row: Sequence, schema: TableSchema) -> str:
    """Render a row as a pipe-delimited line with trailing pipe."""
    return "|".join(
        format_field(value, column.kind)
        for value, column in zip(row, schema.columns)
    ) + "|"


def parse_row(line: str, schema: TableSchema) -> list:
    """Parse one flat-file line against a table schema."""
    parts = line.rstrip("\n").split("|")
    if parts and parts[-1] == "":
        parts = parts[:-1]
    if len(parts) != len(schema.columns):
        raise ValueError(
            f"{schema.name}: expected {len(schema.columns)} fields, got {len(parts)}"
        )
    return [parse_field(p, c.kind) for p, c in zip(parts, schema.columns)]


def write_flat_file(path: str, rows: Iterable[Sequence], schema: TableSchema) -> int:
    """Write rows to ``path``; returns the number of bytes written."""
    total = 0
    with open(path, "w", encoding="utf-8") as handle:
        for row in rows:
            line = format_row(row, schema) + "\n"
            handle.write(line)
            total += len(line.encode("utf-8"))
    return total


def _format_column(data: np.ndarray, null, kind: Kind) -> np.ndarray:
    """Render one generated column as flat-file field strings."""
    if kind is Kind.STR:
        rendered = np.asarray(data, dtype=str)
        # empty strings and quote-only strings need the '""' escape
        specials = np.char.strip(rendered, '"') == ""
        if specials.any():
            rendered = rendered.astype(object)
            for i in np.flatnonzero(specials):
                rendered[i] = _escape_str(rendered[i])
    elif kind is Kind.FLOAT:
        rendered = np.char.mod("%.2f", data)
    elif kind is Kind.DATE:
        rendered = np.datetime_as_string(data.astype("datetime64[D]"), unit="D")
    elif kind is Kind.INT:
        rendered = np.char.mod("%d", data)
    else:
        rendered = data.astype(str)
    if null is not None and null.any():
        rendered = rendered.astype(object)
        rendered[null] = ""
    return rendered


def write_columnar_flat_file(path: str, table: "ColumnarTable") -> int:
    """Write a columnar table as a .dat file, byte-identical to
    :func:`write_flat_file` over its materialized rows, but formatting
    whole columns at once."""
    fields = [
        _format_column(table.columns[c.name], table.nulls.get(c.name), c.kind)
        for c in table.schema.columns
    ]
    if not fields or table.num_rows == 0:
        with open(path, "w", encoding="utf-8"):
            pass
        return 0
    lines = np.asarray(fields[0], dtype=object)
    for field in fields[1:]:
        lines = lines + "|"
        lines = lines + field
    payload = "|\n".join(lines.tolist()) + "|\n"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(payload)
    return len(payload.encode("utf-8"))


def read_flat_file(path: str, schema: TableSchema) -> list[list]:
    """Load a .dat file into typed row lists."""
    rows = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            if line.strip():
                rows.append(parse_row(line, schema))
    return rows


@dataclass(frozen=True)
class RowLengthStats:
    """Per-schema flat-file row-length aggregates (Table 1's byte rows)."""

    min_bytes: int
    max_bytes: int
    avg_bytes: float


def measured_row_statistics(tables: dict[str, list], schemas: dict[str, TableSchema]) -> RowLengthStats:
    """Row-length statistics over the *average* flat-file row of each
    table, matching the paper's footnote ("raw size of flat files as
    created by the data generator")."""
    per_table_avg: list[float] = []
    for name, rows in tables.items():
        schema = schemas[name]
        if not rows:
            continue
        sample = rows if len(rows) <= 2000 else rows[:: max(1, len(rows) // 2000)]
        # UTF-8 encoded bytes (+1 for the newline), matching what
        # write_flat_file counts — len() of the str would undercount
        # non-ASCII data
        sizes = [len(format_row(r, schema).encode("utf-8")) + 1 for r in sample]
        per_table_avg.append(sum(sizes) / len(sizes))
    if not per_table_avg:
        return RowLengthStats(0, 0, 0.0)
    return RowLengthStats(
        min_bytes=round(min(per_table_avg)),
        max_bytes=round(max(per_table_avg)),
        avg_bytes=sum(per_table_avg) / len(per_table_avg),
    )


def dat_path(directory: str, table: str, suffix: str = "") -> str:
    """The <directory>/<table>.dat path convention; parallel chunks use
    a ``_<chunk>_<parallel>`` suffix like the kit's ``-child`` output."""
    return os.path.join(directory, f"{table}{suffix}.dat")
