PYTHON ?= python
export PYTHONPATH := src

.PHONY: check test determinism bench qualification

## tier-1 suite + parallel-generation determinism smoke
check: test determinism

test:
	$(PYTHON) -m pytest -x -q

## serial vs 4-worker generation must be byte-identical (sf 0.001)
determinism:
	$(PYTHON) -m pytest tests/test_parallel_dsdgen.py -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

## regenerate the pinned qualification answer set (after intentional
## behavioral changes only)
qualification:
	$(PYTHON) -m repro.qgen.qualification
