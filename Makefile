PYTHON ?= python
export PYTHONPATH := src

.PHONY: check test determinism bench bench-smoke bench-compare qualification difftest faultcheck parallelcheck obscheck storecheck servecheck

## fuzz seed for `make difftest`; CI rotates it per run and logs the
## value so any failure replays with DIFFTEST_SEED=<logged seed>
DIFFTEST_SEED ?= 19620718

## noise threshold for `make bench-compare` (fraction: 0.25 flags
## run-over-run slowdowns beyond 1.25x)
BENCH_COMPARE_THRESHOLD ?= 0.25

## history.jsonl is append-only; bench-compare bounds it to the last
## N runs per (git sha, bench module) before diffing
BENCH_HISTORY_KEEP ?= 10

## tier-1 suite + parallel-generation determinism smoke
check: test determinism

test:
	$(PYTHON) -m pytest -x -q

## serial vs 4-worker generation must be byte-identical (sf 0.001)
determinism:
	$(PYTHON) -m pytest tests/test_parallel_dsdgen.py -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

## fast CI smoke: quick benches with BENCH_*.json output, the
## observability zero-overhead check (<2% with tracing disabled), and
## the serial-vs-parallel operator speedup curve
bench-smoke:
	$(PYTHON) -m pytest benchmarks/bench_metric_qphds.py \
	    benchmarks/bench_table1_schema_stats.py \
	    benchmarks/bench_engine_operators.py --benchmark-only -q
	$(PYTHON) benchmarks/check_overhead.py
	$(PYTHON) benchmarks/check_parallel_speedup.py

## compare the latest two benchmark runs in history.jsonl; exits
## nonzero when any bench regressed beyond the noise threshold
bench-compare:
	$(PYTHON) -m repro.cli obs history --prune --keep $(BENCH_HISTORY_KEEP) \
	    --history benchmarks/results/history.jsonl
	$(PYTHON) -m repro.cli obs diff --history benchmarks/results/history.jsonl \
	    --threshold $(BENCH_COMPARE_THRESHOLD)

## telemetry pipeline: the <2% disabled-path overhead certificate plus
## an end-to-end smoke — a sf=0.004 workers=2 power run exporting a
## validated Chrome trace (with >= 2 pool-worker lanes) and the
## self-contained HTML dashboard
obscheck:
	$(PYTHON) benchmarks/check_overhead.py
	$(PYTHON) scripts/obs_smoke.py

## column-store round trip: build sf=0.01, save, reopen lazily, run
## all 108 qualification statements byte-identical store-vs-memory,
## verify zone-map pruning and incremental DML saves
storecheck:
	$(PYTHON) scripts/store_check.py

## query-service gate: service/loadgen unit tests, then a 4-tenant
## burst under fault injection — zero cross-tenant failures, bounded
## queues with retry_after shedding, breaker trip + recovery, SLA
## verdict emitted and sys.service consistent
servecheck:
	$(PYTHON) -m pytest tests/test_service.py tests/test_loadgen.py -q
	$(PYTHON) scripts/serve_check.py

## regenerate the pinned qualification answer set (after intentional
## behavioral changes only)
qualification:
	$(PYTHON) -m repro.qgen.qualification

## differential correctness vs the SQLite oracle: all 99 qualification
## queries + 200 fuzzer queries; mismatches get shrunk into
## tests/difftest_corpus/
difftest:
	$(PYTHON) -m repro.cli difftest --scale 0.01 --fuzz 200 \
	    --fuzz-seed $(DIFFTEST_SEED)

## morsel-parallel execution: pool unit tests, the 108-statement +
## repro-corpus determinism matrix (workers ∈ {2, 4} byte-identical to
## serial), spill-accounting invariance, and governor/fault-injection
## checks firing inside worker threads
parallelcheck:
	$(PYTHON) -m pytest tests/engine/test_parallel_pool.py \
	    tests/test_parallel_engine.py tests/test_stream_stress.py -q

## robustness suite: resource governor (spill byte-identity, timeouts,
## cancellation), deterministic fault injection, checkpoint/resume, the
## 4-stream race-freedom stress test, and a SIGKILL-and-resume smoke
faultcheck:
	$(PYTHON) -m pytest tests/engine/test_governor.py tests/test_faults.py \
	    tests/test_resume.py tests/test_stream_stress.py -q
	$(PYTHON) scripts/kill_resume_smoke.py
